//! Rank spawning, point-to-point messaging, and simulated clocks.

use crossbeam::channel::{unbounded, Receiver, Sender};
use mxp_netsim::{GcdLoc, NetworkConfig};
use std::sync::Arc;

use crate::collectives::CollectiveTuning;
use crate::event::EventWorld;
use crate::fault::{fault_effect, LinkFault};
use crate::hash::FxHashMap;
use crate::request::{RecvRequest, SendRequest};

/// Description of a job: how many ranks, where each lives, and how the
/// network behaves. Analogous to `mpirun` plus the machine file.
#[derive(Clone, Debug)]
pub struct WorldSpec {
    /// Physical location of each rank (rank index → GCD slot).
    pub locs: Vec<GcdLoc>,
    /// Interconnect model.
    pub net: NetworkConfig,
    /// CPU-side software overhead charged per send.
    pub send_overhead: f64,
    /// CPU-side software overhead charged per receive.
    pub recv_overhead: f64,
    /// Collective algorithm tuning (chunk sizes, vendor quirks).
    pub tuning: CollectiveTuning,
    /// Injected link-level faults (latency spikes, bandwidth collapse);
    /// empty for a healthy fabric. Applied by every matching send.
    pub faults: Vec<LinkFault>,
    /// Shard (worker-thread) count for the event backend: 0 = automatic
    /// (the `HPLAI_EVENT_SHARDS` environment variable, else the machine's
    /// parallelism). Purely a host-execution knob — simulated clocks,
    /// event signatures, and solutions are bitwise identical at any value.
    pub event_shards: usize,
}

impl WorldSpec {
    /// A cluster of `nodes × gcds_per_node` ranks laid out consecutively
    /// (rank r → node r / Q, slot r mod Q) — the paper's default mapping
    /// before node-local grid tuning reorders *grid coordinates*, not
    /// locations.
    pub fn cluster(nodes: usize, gcds_per_node: usize, net: NetworkConfig) -> Self {
        let locs = (0..nodes * gcds_per_node)
            .map(|r| GcdLoc {
                node: r / gcds_per_node,
                gcd: r % gcds_per_node,
            })
            .collect();
        WorldSpec {
            locs,
            net,
            send_overhead: 1.0e-6,
            recv_overhead: 0.5e-6,
            tuning: CollectiveTuning::default(),
            faults: Vec::new(),
            event_shards: 0,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.locs.len()
    }

    /// Runs one closure per rank on its own thread and returns their
    /// results in rank order. The closure receives this rank's [`Comm`].
    ///
    /// Panics in any rank propagate (a failed rank fails the job, like an
    /// MPI abort).
    pub fn run<M, T, F>(&self, f: F) -> Vec<T>
    where
        M: Send + 'static,
        T: Send,
        F: Fn(Comm<M>) -> T + Sync,
    {
        let p = self.ranks();
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Envelope<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let spec = Arc::new(self.clone());
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let spec = Arc::clone(&spec);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let comm =
                        Comm::with_endpoint(rank, spec, Endpoint::Thread { senders, inbox: rx });
                    f(comm)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => out[rank] = Some(v),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
        out.into_iter().map(|v| v.unwrap()).collect()
    }

    /// Runs one closure per rank as coroutine-style continuations of the
    /// *calling* thread, scheduled by the discrete-event backend. Clocks,
    /// payloads, and panic propagation behave exactly as under
    /// [`run`](Self::run) — the matching discipline makes the simulated
    /// timeline schedule-independent — but ranks cost a small stack each
    /// instead of an OS thread, so one process can hold full-machine
    /// extents (~75k ranks).
    ///
    /// Additionally panics (instead of hanging) on communication deadlock,
    /// naming the blocked ranks. On targets without a fiber implementation
    /// this falls back to [`run`](Self::run).
    pub fn run_event<M, T, F>(&self, f: F) -> Vec<T>
    where
        M: Send + 'static,
        T: Send,
        F: Fn(Comm<M>) -> T + Sync,
    {
        crate::event::run_event(self, f)
    }
}

pub(crate) struct Envelope<M> {
    pub(crate) src: usize,
    pub(crate) tag: u32,
    /// Position in the per-(src, dst, tag) message stream, assigned by the
    /// sender. Receives match on it so that out-of-order waits still pair
    /// the `i`-th posted receive with the `i`-th sent message (MPI's
    /// non-overtaking rule).
    pub(crate) seq: u64,
    pub(crate) arrive: f64,
    pub(crate) bytes: u64,
    pub(crate) msg: M,
}

/// Bookkeeping returned by a receive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecvInfo {
    /// Simulated seconds this rank idled waiting for the message (0 if it
    /// had already arrived) — the "communication wait time" of Fig. 10.
    pub waited: f64,
    /// Declared size of the received message.
    pub bytes: u64,
    /// Simulated arrival timestamp of the message.
    pub arrived_at: f64,
    /// Simulated seconds of the transfer's flight time covered by local
    /// work between post and wait (0 for blocking receives) — the honest
    /// measure of communication/computation overlap.
    pub hidden: f64,
}

/// The transport behind a [`Comm`]: crossbeam channels between rank
/// threads (functional backend) or a shared mailbox world driven by the
/// discrete-event scheduler (event backend). The clock model above this
/// seam is transport-agnostic, which is what keeps the two backends
/// bit-identical.
pub(crate) enum Endpoint<M> {
    /// Thread-per-rank transport.
    Thread {
        senders: Arc<Vec<Sender<Envelope<M>>>>,
        inbox: Receiver<Envelope<M>>,
    },
    /// Fiber-per-rank transport: the sharded event world routes envelopes
    /// between shard workers and keeps a per-rank indexed mailbox.
    Event(Arc<EventWorld<M>>),
}

/// One rank's endpoint: point-to-point messaging plus the simulated clock.
pub struct Comm<M> {
    rank: usize,
    spec: Arc<WorldSpec>,
    endpoint: Endpoint<M>,
    pending: Vec<Envelope<M>>,
    /// Next sequence number per outgoing `(dst, tag)` stream.
    send_seq: FxHashMap<(usize, u32), u64>,
    /// Next sequence number per posted-receive `(src, tag)` stream.
    recv_seq: FxHashMap<(usize, u32), u64>,
    clock: f64,
    /// Time the NIC finishes serializing the last posted (non-blocking)
    /// injection — back-to-back `isend`s queue here instead of magically
    /// parallelizing.
    nic_free: f64,
    wait_total: f64,
    hidden_total: f64,
    last_arrive: f64,
    bytes_sent: u64,
    default_sharers: u32,
}

impl<M: Send + 'static> Comm<M> {
    fn with_endpoint(rank: usize, spec: Arc<WorldSpec>, endpoint: Endpoint<M>) -> Self {
        Comm {
            rank,
            spec,
            endpoint,
            pending: Vec::new(),
            send_seq: FxHashMap::default(),
            recv_seq: FxHashMap::default(),
            clock: 0.0,
            nic_free: 0.0,
            wait_total: 0.0,
            hidden_total: 0.0,
            last_arrive: 0.0,
            bytes_sent: 0,
            default_sharers: 1,
        }
    }

    /// Builds the event-backend endpoint for `rank` (called from the
    /// scheduler's per-rank fiber).
    pub(crate) fn event(rank: usize, spec: Arc<WorldSpec>, world: Arc<EventWorld<M>>) -> Self {
        Comm::with_endpoint(rank, spec, Endpoint::Event(world))
    }

    /// Stamps the next stream sequence number and hands the envelope to
    /// the transport.
    fn post(&mut self, dst: usize, tag: u32, arrive: f64, bytes: u64, msg: M) {
        let seq = self.send_seq.entry((dst, tag)).or_insert(0);
        let env = Envelope {
            src: self.rank,
            tag,
            seq: *seq,
            arrive,
            bytes,
            msg,
        };
        *seq += 1;
        match &self.endpoint {
            Endpoint::Thread { senders, .. } => {
                senders[dst].send(env).expect("destination rank hung up")
            }
            Endpoint::Event(world) => world.deliver(dst, env),
        }
    }

    /// Removes and returns the `(src, tag, seq)` envelope, blocking (on
    /// the transport's terms) until it has been sent. The event world
    /// keeps its own per-rank (src, tag)-indexed mailbox, so only the
    /// thread transport goes through the flat pending buffer.
    fn obtain(&mut self, src: usize, tag: u32, seq: u64) -> Envelope<M> {
        let matches = |e: &Envelope<M>| e.src == src && e.tag == tag && e.seq == seq;
        let rank = self.rank;
        let Comm {
            endpoint, pending, ..
        } = self;
        match endpoint {
            Endpoint::Thread { inbox, .. } => {
                if let Some(pos) = pending.iter().position(matches) {
                    return pending.remove(pos);
                }
                loop {
                    let env = inbox.recv().expect("world torn down mid-recv");
                    if matches(&env) {
                        return env;
                    }
                    pending.push(env);
                }
            }
            Endpoint::Event(world) => world.obtain(rank, src, tag, seq),
        }
    }

    /// Moves every envelope the thread transport has already produced into
    /// the local pending buffer, without blocking. A no-op on the event
    /// transport, whose mailboxes are queried in place.
    fn drain_available(&mut self) {
        let Comm {
            endpoint, pending, ..
        } = self;
        if let Endpoint::Thread { inbox, .. } = endpoint {
            while let Ok(env) = inbox.try_recv() {
                pending.push(env);
            }
        }
    }
    /// This rank's index.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.spec.ranks()
    }

    /// Physical location of a rank.
    #[inline]
    pub fn loc_of(&self, rank: usize) -> GcdLoc {
        self.spec.locs[rank]
    }

    /// The job description this rank runs under.
    #[inline]
    pub fn spec(&self) -> &WorldSpec {
        &self.spec
    }

    /// Current simulated time on this rank.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Accumulated receive-wait time (Fig. 10's "wait" series).
    #[inline]
    pub fn wait_total(&self) -> f64 {
        self.wait_total
    }

    /// Re-seats the accumulated wait counter to a checkpointed value.
    /// Per-op waits are extracted as `wait_total() - w0` deltas, and
    /// floating-point subtraction is not associative — a resumed rank must
    /// accumulate onto the same bit pattern as the run that drained the
    /// snapshot, or its deltas drift by ULPs from the uninterrupted run.
    #[inline]
    pub fn restore_wait_total(&mut self, w: f64) {
        self.wait_total = w;
    }

    /// Accumulated overlap-hidden time: transfer flight time covered by
    /// local work between a request's post and its wait (§IV-B look-ahead
    /// earns its keep here).
    #[inline]
    pub fn hidden_total(&self) -> f64 {
        self.hidden_total
    }

    /// Arrival timestamp of the most recently accepted message (0.0 before
    /// any receive). Split-phase collectives use this to bound how much of
    /// a deferred transfer was really in flight.
    #[inline]
    pub fn last_arrive(&self) -> f64 {
        self.last_arrive
    }

    /// Total bytes this rank has injected.
    #[inline]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Sets the NIC-sharers hint used by plain [`send`](Self::send) — the
    /// `Q_r`/`Q_c` concurrency factor of Eq. 5 for the current phase.
    pub fn set_default_sharers(&mut self, sharers: u32) {
        self.default_sharers = sharers.max(1);
    }

    /// Advances this rank's clock by `dt` simulated seconds of local work
    /// (GPU kernels, packing, …).
    pub fn charge(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "negative charge {dt}");
        self.clock += dt;
    }

    /// Sends `msg` (declared size `bytes`) to `dst` with an explicit
    /// sharers hint. Non-blocking in real time; in simulated time the
    /// sender is busy for the software overhead plus injection
    /// serialization.
    pub fn send_with(&mut self, dst: usize, tag: u32, msg: M, bytes: u64, sharers: u32) {
        let cost = self
            .spec
            .net
            .p2p(self.spec.locs[self.rank], self.spec.locs[dst], sharers);
        let (extra_lat, bw_div) = fault_effect(&self.spec.faults, self.rank, dst, self.clock);
        self.clock += self.spec.send_overhead + bytes as f64 * cost.sec_per_byte * bw_div;
        self.nic_free = self.nic_free.max(self.clock);
        self.bytes_sent += bytes;
        let arrive = self.clock + cost.latency + extra_lat;
        self.post(dst, tag, arrive, bytes, msg);
    }

    /// Sends with the communicator's default sharers hint.
    pub fn send(&mut self, dst: usize, tag: u32, msg: M, bytes: u64) {
        self.send_with(dst, tag, msg, bytes, self.default_sharers);
    }

    /// Posts a non-blocking send with an explicit sharers hint. The CPU is
    /// busy only for the software overhead; the NIC serializes the payload
    /// asynchronously starting when it is free (injections queue), and the
    /// request completes locally when serialization finishes.
    pub fn isend_with(
        &mut self,
        dst: usize,
        tag: u32,
        msg: M,
        bytes: u64,
        sharers: u32,
    ) -> SendRequest {
        let cost = self
            .spec
            .net
            .p2p(self.spec.locs[self.rank], self.spec.locs[dst], sharers);
        let (extra_lat, bw_div) = fault_effect(&self.spec.faults, self.rank, dst, self.clock);
        let posted_at = self.clock;
        self.clock += self.spec.send_overhead;
        let start = self.clock.max(self.nic_free);
        self.nic_free = start + bytes as f64 * cost.sec_per_byte * bw_div;
        self.bytes_sent += bytes;
        let arrive = self.nic_free + cost.latency + extra_lat;
        self.post(dst, tag, arrive, bytes, msg);
        SendRequest {
            posted_at,
            complete_at: self.nic_free,
        }
    }

    /// Posts a non-blocking send with the default sharers hint.
    pub fn isend(&mut self, dst: usize, tag: u32, msg: M, bytes: u64) -> SendRequest {
        self.isend_with(dst, tag, msg, bytes, self.default_sharers)
    }

    /// `true` once a posted send has completed locally (NIC done) by the
    /// current simulated time. Never advances the clock.
    pub fn test_send(&self, req: &SendRequest) -> bool {
        req.complete_at <= self.clock
    }

    /// Completes a posted send: idles until the NIC has finished
    /// serializing (no-op if local work already covered it, in which case
    /// the injection time counts as hidden).
    pub fn wait_send(&mut self, req: SendRequest) {
        let injection = (req.complete_at - req.posted_at).max(0.0);
        let hidden = (self.clock - req.posted_at).clamp(0.0, injection);
        self.hidden_total += hidden;
        let waited = (req.complete_at - self.clock).max(0.0);
        self.wait_total += waited;
        self.clock = self.clock.max(req.complete_at);
    }

    /// Completes every posted send in order.
    pub fn waitall_send(&mut self, reqs: Vec<SendRequest>) {
        for req in reqs {
            self.wait_send(req);
        }
    }

    /// Posts a non-blocking receive for `(src, tag)`. Free at post time;
    /// completion is charged by [`wait_recv`](Self::wait_recv) at
    /// `max(post_time, arrival_time)`.
    ///
    /// Requests posted for the same `(src, tag)` match the sender's
    /// message stream *in post order*, regardless of the order their waits
    /// later run in — the `i`-th post always pairs with the `i`-th send,
    /// so out-of-order waits cannot steal an earlier message or produce
    /// non-FIFO completion clocks.
    pub fn irecv(&mut self, src: usize, tag: u32) -> RecvRequest {
        let seq = self.recv_seq.entry((src, tag)).or_insert(0);
        let req = RecvRequest {
            src,
            tag,
            seq: *seq,
            posted_at: self.clock,
        };
        *seq += 1;
        req
    }

    /// `true` once the message matching the posted receive has arrived by
    /// the current simulated time. Never advances the clock or consumes
    /// the message. Advisory: a `false` can race a sender thread that has
    /// not executed yet in real time — deterministic control flow must
    /// come from `wait_recv`, not from polling.
    pub fn test_recv(&mut self, req: &RecvRequest) -> bool {
        if let Endpoint::Event(world) = &self.endpoint {
            return world
                .peek_arrive(self.rank, req.src, req.tag, req.seq)
                .is_some_and(|arrive| arrive <= self.clock);
        }
        self.drain_available();
        self.pending.iter().any(|e| {
            e.src == req.src && e.tag == req.tag && e.seq == req.seq && e.arrive <= self.clock
        })
    }

    /// Completes a posted receive: blocks (in simulated time, only until
    /// the arrival timestamp) for its stream-matched message. The flight
    /// time covered by local work since the post is reported as
    /// [`RecvInfo::hidden`].
    pub fn wait_recv(&mut self, req: RecvRequest) -> (M, RecvInfo) {
        let env = self.obtain(req.src, req.tag, req.seq);
        let info = self.accept_posted(env.arrive, env.bytes, req.posted_at);
        (env.msg, info)
    }

    /// Completes every posted receive, in post order, returning the
    /// payloads and infos in the same order.
    pub fn waitall_recv(&mut self, reqs: Vec<RecvRequest>) -> Vec<(M, RecvInfo)> {
        reqs.into_iter().map(|r| self.wait_recv(r)).collect()
    }

    /// Low-level send with explicitly modeled costs: the sender is busy for
    /// exactly `busy` seconds and the message arrives `extra_delay` seconds
    /// after the path latency. Used by the collectives module to model
    /// vendor black-box algorithms (e.g. Spectrum MPI's pipelined
    /// broadcast) whose internal schedule we don't reproduce hop by hop.
    pub fn send_modeled(
        &mut self,
        dst: usize,
        tag: u32,
        msg: M,
        bytes: u64,
        busy: f64,
        extra_delay: f64,
    ) {
        let cost = self.spec.net.p2p(
            self.spec.locs[self.rank],
            self.spec.locs[dst],
            self.default_sharers,
        );
        let (extra_lat, bw_div) = fault_effect(&self.spec.faults, self.rank, dst, self.clock);
        // A modeled (black-box collective) send still pays link faults:
        // its busy time scales with the bandwidth derating and its
        // delivery with the latency spike.
        self.clock += busy * bw_div;
        self.nic_free = self.nic_free.max(self.clock);
        self.bytes_sent += bytes;
        let arrive = self.clock + cost.latency + extra_delay + extra_lat;
        self.post(dst, tag, arrive, bytes, msg);
    }

    /// Receives the next message from `src` with tag `tag`, blocking until
    /// it is available. Messages from the same source with the same tag are
    /// delivered in send order. Equivalent to an immediately-waited
    /// [`irecv`](Self::irecv) (the post-and-wait collapse leaves no window
    /// for overlap, so `hidden` is always 0).
    pub fn recv(&mut self, src: usize, tag: u32) -> (M, RecvInfo) {
        let req = self.irecv(src, tag);
        self.wait_recv(req)
    }

    fn accept(&mut self, arrive: f64, bytes: u64) -> RecvInfo {
        let waited = (arrive - self.clock).max(0.0);
        self.wait_total += waited;
        self.clock = arrive.max(self.clock) + self.spec.recv_overhead;
        self.last_arrive = arrive;
        RecvInfo {
            waited,
            bytes,
            arrived_at: arrive,
            hidden: 0.0,
        }
    }

    /// Credits `hidden` overlap seconds accounted outside the
    /// point-to-point paths (split-phase collectives compute their own
    /// overlap from post/join timestamps).
    pub(crate) fn credit_hidden(&mut self, hidden: f64) {
        debug_assert!(hidden >= 0.0, "negative hidden credit {hidden}");
        self.hidden_total += hidden;
    }

    /// [`accept`](Self::accept) for a posted receive: additionally credits
    /// the flight time covered by local work since `posted_at` — the
    /// overlap a blocking receive at the post site would have spent idle.
    fn accept_posted(&mut self, arrive: f64, bytes: u64, posted_at: f64) -> RecvInfo {
        let hidden = (self.clock.min(arrive) - posted_at).max(0.0);
        let mut info = self.accept(arrive, bytes);
        info.hidden = hidden;
        self.hidden_total += hidden;
        info
    }
}

// `recv` above returns `(M, RecvInfo)` from the pending path but
// `(RecvInfo, M)` would be inconsistent; keep one order. (See unit test
// `recv_return_order`.)

#[cfg(test)]
mod tests {
    use super::*;
    use mxp_netsim::frontier_network;

    fn spec(nodes: usize, q: usize) -> WorldSpec {
        WorldSpec::cluster(nodes, q, frontier_network())
    }

    #[test]
    fn two_ranks_pingpong() {
        let w = spec(2, 1);
        let clocks = w.run::<u64, _, _>(|mut c| {
            if c.rank() == 0 {
                c.send(1, 7, 42, 1024);
                let (v, _) = c.recv(1, 8);
                assert_eq!(v, 43);
            } else {
                let (v, info) = c.recv(0, 7);
                assert_eq!(v, 42);
                assert!(info.waited > 0.0);
                c.send(0, 8, v + 1, 1024);
            }
            c.now()
        });
        // Both clocks advanced and rank 0 (which waited for the reply) ends
        // latest or equal.
        assert!(clocks[0] > 0.0 && clocks[1] > 0.0);
        assert!(clocks[0] >= clocks[1] * 0.5);
    }

    #[test]
    fn clocks_are_deterministic() {
        let w = spec(4, 2);
        let job = |mut c: Comm<Vec<f64>>| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.charge(1e-3 * c.rank() as f64);
            c.send(next, 1, vec![c.rank() as f64], 1 << 20);
            let (_, _) = c.recv(prev, 1);
            c.now()
        };
        let a = w.run(job);
        let b = w.run(job);
        assert_eq!(a, b);
    }

    #[test]
    fn tag_and_source_matching() {
        let w = spec(3, 1);
        w.run::<(u32, u32), _, _>(|mut c| {
            match c.rank() {
                0 => {
                    // Send two messages with different tags, out of the
                    // order the receiver will consume them.
                    c.send(2, 10, (0, 10), 64);
                    c.send(2, 11, (0, 11), 64);
                }
                1 => {
                    c.send(2, 10, (1, 10), 64);
                }
                2 => {
                    // Consume in an order that exercises the pending buffer.
                    let (m, _) = c.recv(1, 10);
                    assert_eq!(m, (1, 10));
                    let (m, _) = c.recv(0, 11);
                    assert_eq!(m, (0, 11));
                    let (m, _) = c.recv(0, 10);
                    assert_eq!(m, (0, 10));
                }
                _ => unreachable!(),
            }
        });
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let w = spec(2, 1);
        w.run::<u32, _, _>(|mut c| {
            if c.rank() == 0 {
                for i in 0..16 {
                    c.send(1, 5, i, 8);
                }
            } else {
                for i in 0..16 {
                    let (v, _) = c.recv(0, 5);
                    assert_eq!(v, i);
                }
            }
        });
    }

    #[test]
    fn compute_overlaps_communication() {
        // If the receiver computes first, the message is already there and
        // wait is ~0; if it receives immediately it pays the wait. Overlap
        // emerges from the clock model.
        let w = spec(2, 1);
        let waits = w.run::<(), _, _>(|mut c| {
            if c.rank() == 0 {
                c.send(1, 1, (), 64 << 20);
                c.send(1, 2, (), 64 << 20);
                0.0
            } else {
                let (_, eager) = c.recv(0, 1);
                // Now "compute" long enough for message 2 to arrive.
                c.charge(1.0);
                let (_, lazy) = c.recv(0, 2);
                assert!(eager.waited > 0.0);
                assert_eq!(lazy.waited, 0.0);
                eager.waited
            }
        });
        assert!(waits[1] > 0.0);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let w = spec(2, 2); // ranks 0,1 on node 0; rank 2,3 on node 1
        let clocks = w.run::<(), _, _>(|mut c| {
            match c.rank() {
                0 => {
                    c.send(1, 1, (), 32 << 20);
                    c.send(2, 2, (), 32 << 20);
                }
                1 => {
                    c.recv(0, 1);
                }
                2 => {
                    c.recv(0, 2);
                }
                _ => {}
            }
            c.now()
        });
        assert!(
            clocks[1] < clocks[2],
            "intra-node {} should beat inter-node {}",
            clocks[1],
            clocks[2]
        );
    }

    #[test]
    fn sharers_hint_slows_injection() {
        // Direct comparison on a 2-node world.
        let w = spec(2, 8);
        let t1 = w.run::<(), _, _>(|mut c| {
            if c.rank() == 0 {
                c.send_with(8, 1, (), 100 << 20, 4);
            } else if c.rank() == 8 {
                c.recv(0, 1);
            }
            c.now()
        });
        let t8 = w.run::<(), _, _>(|mut c| {
            if c.rank() == 0 {
                c.send_with(8, 1, (), 100 << 20, 8);
            } else if c.rank() == 8 {
                c.recv(0, 1);
            }
            c.now()
        });
        assert!(t8[8] > 1.5 * t1[8], "8 sharers {} vs 4 {}", t8[8], t1[8]);
    }

    #[test]
    fn wait_total_accumulates() {
        let w = spec(2, 1);
        let waits = w.run::<(), _, _>(|mut c| {
            if c.rank() == 0 {
                c.charge(0.5);
                c.send(1, 1, (), 1024);
            } else {
                c.recv(0, 1);
            }
            c.wait_total()
        });
        assert_eq!(waits[0], 0.0);
        assert!(waits[1] >= 0.5, "receiver waited {}", waits[1]);
    }

    #[test]
    fn bytes_sent_tracked() {
        let w = spec(2, 1);
        let sent = w.run::<(), _, _>(|mut c| {
            if c.rank() == 0 {
                c.send(1, 1, (), 100);
                c.send(1, 2, (), 200);
            } else {
                c.recv(0, 1);
                c.recv(0, 2);
            }
            c.bytes_sent()
        });
        assert_eq!(sent, vec![300, 0]);
    }

    #[test]
    fn link_latency_fault_delays_delivery() {
        use crate::fault::{LinkFault, LinkScope};
        let healthy = spec(2, 1);
        let mut broken = spec(2, 1);
        broken
            .faults
            .push(LinkFault::latency(LinkScope::Pair { src: 0, dst: 1 }, 0.25));
        let job = |mut c: Comm<()>| {
            if c.rank() == 0 {
                c.send(1, 1, (), 1024);
            } else {
                c.recv(0, 1);
            }
            c.now()
        };
        let base = healthy.run(job);
        let hurt = broken.run(job);
        // Sender cost unchanged; receiver pays the injected latency.
        assert_eq!(base[0], hurt[0]);
        assert!(
            hurt[1] >= base[1] + 0.25,
            "faulty {} vs healthy {}",
            hurt[1],
            base[1]
        );
    }

    #[test]
    fn bandwidth_collapse_slows_serialization() {
        use crate::fault::{LinkFault, LinkScope};
        let healthy = spec(2, 1);
        let mut broken = spec(2, 1);
        broken
            .faults
            .push(LinkFault::bandwidth_collapse(LinkScope::From(0), 10.0));
        let job = |mut c: Comm<()>| {
            if c.rank() == 0 {
                c.send(1, 1, (), 64 << 20);
            }
            c.now()
        };
        let base = healthy.run(job);
        let hurt = broken.run(job);
        assert!(
            hurt[0] > 5.0 * base[0],
            "collapsed {} vs nominal {}",
            hurt[0],
            base[0]
        );
    }

    #[test]
    fn unmatched_scope_changes_nothing() {
        use crate::fault::{LinkFault, LinkScope};
        let healthy = spec(2, 1);
        let mut other = spec(2, 1);
        // Fault on traffic *to rank 0* — the 0→1 send is unaffected.
        other.faults.push(LinkFault::latency(LinkScope::To(0), 1.0));
        let job = |mut c: Comm<()>| {
            if c.rank() == 0 {
                c.send(1, 1, (), 1 << 20);
            } else {
                c.recv(0, 1);
            }
            c.now()
        };
        assert_eq!(healthy.run(job), other.run(job));
    }

    #[test]
    fn fault_onset_spares_early_messages() {
        use crate::fault::{LinkFault, LinkScope};
        let mut w = spec(2, 1);
        w.faults
            .push(LinkFault::latency(LinkScope::All, 0.5).starting_at(1.0));
        w.run::<u32, _, _>(|mut c| {
            if c.rank() == 0 {
                c.send(1, 1, 0, 1024); // sent at t≈0: clean
                c.charge(2.0);
                c.send(1, 2, 0, 1024); // sent at t≈2: faulted
            } else {
                let (_, early) = c.recv(0, 1);
                let (_, late) = c.recv(0, 2);
                // First message predates the onset: only path latency.
                assert!(early.arrived_at < 0.1, "early at {}", early.arrived_at);
                // Second was sent after onset: pays the extra 0.5 s.
                assert!(late.arrived_at >= 2.5, "late at {}", late.arrived_at);
            }
        });
    }

    #[test]
    fn event_backend_matches_thread_backend_clocks() {
        // The same job on both backends must produce bit-identical clocks
        // and counters: the event scheduler only changes who runs when,
        // never what the simulated timeline looks like.
        let w = spec(4, 2);
        let job = |mut c: Comm<Vec<f64>>| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.charge(1e-3 * c.rank() as f64);
            let req = c.isend(next, 1, vec![c.rank() as f64], 1 << 20);
            let (v, info) = c.recv(prev, 1);
            c.wait_send(req);
            (v, info.waited, c.now().to_bits(), c.wait_total().to_bits())
        };
        let threads = w.run(job);
        let events = w.run_event(job);
        assert_eq!(threads, events);
    }

    #[test]
    fn event_backend_runs_out_of_order_waits() {
        let w = spec(2, 1);
        let logs = w.run_event::<u32, _, _>(|mut c| {
            if c.rank() == 0 {
                for i in 0..4 {
                    c.charge(0.01);
                    c.send(1, 9, i, 1 << 16);
                }
                Vec::new()
            } else {
                let reqs: Vec<_> = (0..4).map(|_| c.irecv(0, 9)).collect();
                // Wait in reverse post order: stream matching must still
                // pair request i with message i.
                let mut got = vec![(0u32, 0.0f64); 4];
                for (i, req) in reqs.into_iter().enumerate().rev() {
                    let (v, info) = c.wait_recv(req);
                    got[i] = (v, info.arrived_at);
                }
                got
            }
        });
        let arrivals: Vec<f64> = logs[1].iter().map(|&(_, a)| a).collect();
        for (i, &(v, _)) in logs[1].iter().enumerate() {
            assert_eq!(v, i as u32, "request {i} stole message {v}");
        }
        // FIFO clocks: per-(src, tag) arrivals are monotone in post order.
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1], "arrivals regressed: {arrivals:?}");
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn event_backend_diagnoses_deadlock() {
        // Both ranks wait for a message nobody sends: the thread backend
        // would hang here; the event backend must name the blocked ranks.
        let w = spec(2, 1);
        w.run_event::<(), _, _>(|mut c| {
            let peer = 1 - c.rank();
            c.recv(peer, 77);
        });
    }

    #[test]
    #[should_panic(expected = "rank died")]
    fn event_backend_propagates_rank_panics() {
        let w = spec(2, 1);
        w.run_event::<(), _, _>(|c| {
            if c.rank() == 1 {
                panic!("rank died");
            }
        });
    }

    #[test]
    fn event_backend_scales_past_thread_limits() {
        // A ring at a rank count that is uncomfortable thread-per-rank but
        // trivial for fibers; clocks must still be deterministic.
        let w = spec(2048, 8);
        let job = |mut c: Comm<()>| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 1, (), 4096);
            c.recv(prev, 1);
            c.now().to_bits()
        };
        let a = w.run_event(job);
        let b = w.run_event(job);
        assert_eq!(a.len(), 16384);
        assert_eq!(a, b);
    }

    #[test]
    fn recv_return_order() {
        // Both recv paths (pending-buffer hit and direct) must return the
        // message first, info second.
        let w = spec(2, 1);
        w.run::<u8, _, _>(|mut c| {
            if c.rank() == 0 {
                c.send(1, 2, 2, 8);
                c.send(1, 1, 1, 8);
            } else {
                let (m1, i1): (u8, RecvInfo) = c.recv(0, 1); // forces buffering of tag 2
                let (m2, i2): (u8, RecvInfo) = c.recv(0, 2); // pending path
                assert_eq!((m1, m2), (1, 2));
                assert!(i1.bytes == 8 && i2.bytes == 8);
            }
        });
    }
}
