//! Sub-communicators: the row and column groups of the 2D process grid.

/// A subset of world ranks acting as a communicator (like an
/// `MPI_Comm_split` result). All members must invoke each collective in the
/// same order; a per-group sequence number keeps their tags matched.
#[derive(Clone, Debug)]
pub struct Group {
    members: Vec<usize>,
    my_idx: usize,
    color: u32,
    seq: u32,
    /// Memoized worst member-to-member path cost (see
    /// `Group::worst_cost`): membership and the network model are fixed
    /// for the group's lifetime, and rescanning every member on each
    /// broadcast root was measurable at full-machine extents.
    pub(crate) worst_cost: Option<mxp_netsim::P2pCost>,
}

impl Group {
    /// Builds the group for a member rank. Returns `None` if `world_rank`
    /// is not in `members`. `color` must be unique among groups that a rank
    /// uses concurrently (e.g. row index vs column index with distinct
    /// namespaces).
    pub fn new(world_rank: usize, members: Vec<usize>, color: u32) -> Option<Self> {
        assert!(color < 0x4000, "color {color} out of tag space");
        let my_idx = members.iter().position(|&m| m == world_rank)?;
        Some(Group {
            members,
            my_idx,
            color,
            seq: 0,
            worst_cost: None,
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the group has no members (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// This rank's index within the group.
    pub fn my_idx(&self) -> usize {
        self.my_idx
    }

    /// World rank of group member `idx`.
    pub fn member(&self, idx: usize) -> usize {
        self.members[idx]
    }

    /// All member world ranks, in group order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Allocates the tag for the next collective on this group.
    pub(crate) fn next_tag(&mut self) -> u32 {
        let tag = 0x8000_0000 | (self.color << 16) | (self.seq & 0xFFFF);
        self.seq = self.seq.wrapping_add(1);
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let g = Group::new(7, vec![3, 7, 11], 5).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.my_idx(), 1);
        assert_eq!(g.member(2), 11);
        assert!(Group::new(8, vec![3, 7, 11], 5).is_none());
    }

    #[test]
    fn tags_are_distinct_per_color_and_seq() {
        let mut a = Group::new(0, vec![0, 1], 1).unwrap();
        let mut b = Group::new(0, vec![0, 1], 2).unwrap();
        let t1 = a.next_tag();
        let t2 = a.next_tag();
        let t3 = b.next_tag();
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
        // All collective tags carry the high bit.
        assert!(t1 & 0x8000_0000 != 0);
    }

    #[test]
    fn matching_order_produces_matching_tags() {
        let mut on_rank0 = Group::new(0, vec![0, 1, 2], 9).unwrap();
        let mut on_rank2 = Group::new(2, vec![0, 1, 2], 9).unwrap();
        assert_eq!(on_rank0.next_tag(), on_rank2.next_tag());
        assert_eq!(on_rank0.next_tag(), on_rank2.next_tag());
    }
}
