//! Collective operations: the paper's §IV-B "Communicator Choice" family.
//!
//! Two kinds of implementation coexist, mirroring how the paper's code sees
//! the world:
//!
//! * **Vendor black boxes** — `MPI_Bcast`/`MPI_Ibcast` as shipped by
//!   Spectrum MPI (Summit) and Cray MPICH (Frontier). We model these with a
//!   closed-form cost per call ([`LibQuality`]): Summit's broadcast is
//!   deeply pipelined and near bandwidth-optimal on its fat tree, while
//!   early Frontier MPICH falls back to a plain binomial tree for large
//!   device buffers — which is exactly why the paper's hand-written rings
//!   win 20–34% there and lose 2–12% on Summit.
//! * **Hand-written rings** (`Ring1`, `Ring1M`, `Ring2M`) — built from
//!   point-to-point sends exactly as the paper describes ("built with MPI
//!   point-to-point send and receives"); their pipelining behaviour
//!   *emerges* from the LogP clocks.
//!
//! [`bcast_cost`] exposes closed-form completion estimates for every
//! algorithm; the critical-path driver in `hplai-core` uses them at scales
//! where thread-per-rank simulation is impractical, and an integration test
//! pins them against the emergent implementations at small scale.

use crate::group::Group;
use crate::world::Comm;
use mxp_netsim::P2pCost;

/// How the vendor `MPI_Bcast` behaves on this machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LibQuality {
    /// Mature, fat-tree-tuned pipelined broadcast (Summit / Spectrum MPI).
    Pipelined,
    /// Plain binomial tree per call (early Frontier / Cray MPICH on GPU
    /// buffers).
    Binomial,
}

/// Broadcast algorithm selection (§IV-B, Fig. 8 x-axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcastAlgo {
    /// The vendor library `MPI_Bcast` (behaviour set by
    /// [`CollectiveTuning::lib_quality`]).
    Lib,
    /// The vendor non-blocking `MPI_Ibcast` issued and immediately waited
    /// (when used through the blocking [`Group::bcast`] entry point).
    IBcast,
    /// Single pipelined ring of point-to-point sends.
    Ring1,
    /// Modified ring: the root feeds two half-chains, halving depth at the
    /// cost of doubling root injection.
    Ring1M,
    /// Modified double ring: the message is split in half and pipelined in
    /// both directions around the ring (the paper's best on Frontier).
    Ring2M,
}

impl BcastAlgo {
    /// All variants, in the order Fig. 8 lists them.
    pub const ALL: [BcastAlgo; 5] = [
        BcastAlgo::Lib,
        BcastAlgo::IBcast,
        BcastAlgo::Ring1,
        BcastAlgo::Ring1M,
        BcastAlgo::Ring2M,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            BcastAlgo::Lib => "Bcast",
            BcastAlgo::IBcast => "IBcast",
            BcastAlgo::Ring1 => "Ring1",
            BcastAlgo::Ring1M => "Ring1M",
            BcastAlgo::Ring2M => "Ring2M",
        }
    }
}

/// Vendor/tuning knobs for collectives.
#[derive(Clone, Copy, Debug)]
pub struct CollectiveTuning {
    /// Pipeline chunk size for the ring algorithms, bytes.
    pub chunk_bytes: u64,
    /// Maximum number of pipeline chunks per broadcast (bounds message
    /// count in the emergent simulation).
    pub max_chunks: u32,
    /// Vendor `MPI_Bcast` behaviour.
    pub lib_quality: LibQuality,
    /// Whether `MPI_Ibcast` progresses asynchronously after the post
    /// (Frontier) or only inside the wait (Summit's Spectrum MPI, whose
    /// "asynchronous broadcast \[has\] extremely low performance").
    pub ibcast_async_progress: bool,
    /// Multiplier on `MPI_Ibcast` costs relative to the blocking broadcast
    /// (software-path penalty of the non-blocking machinery).
    pub ibcast_penalty: f64,
    /// Efficiency factor of the pipelined vendor broadcast (≥ 1.0,
    /// multiplies the pure serialization time).
    pub lib_pipeline_factor: f64,
}

impl Default for CollectiveTuning {
    fn default() -> Self {
        CollectiveTuning {
            chunk_bytes: 512 << 10,
            max_chunks: 256,
            lib_quality: LibQuality::Binomial,
            ibcast_async_progress: true,
            ibcast_penalty: 1.3,
            lib_pipeline_factor: 1.15,
        }
    }
}

impl CollectiveTuning {
    /// Summit / Spectrum MPI characteristics (§V-E): excellent blocking
    /// broadcast, unusable non-blocking broadcast.
    pub fn summit() -> Self {
        CollectiveTuning {
            chunk_bytes: 512 << 10,
            max_chunks: 256,
            lib_quality: LibQuality::Pipelined,
            ibcast_async_progress: false,
            ibcast_penalty: 3.0,
            lib_pipeline_factor: 1.15,
        }
    }

    /// Frontier / early Cray MPICH characteristics: binomial library
    /// broadcast on device buffers, working async progress.
    pub fn frontier() -> Self {
        CollectiveTuning {
            chunk_bytes: 512 << 10,
            max_chunks: 256,
            lib_quality: LibQuality::Binomial,
            ibcast_async_progress: true,
            ibcast_penalty: 1.3,
            lib_pipeline_factor: 1.15,
        }
    }

    fn chunks_for(&self, bytes: u64) -> u32 {
        if bytes == 0 {
            return 1;
        }
        (bytes.div_ceil(self.chunk_bytes) as u32).clamp(1, self.max_chunks)
    }
}

/// Split-phase broadcast handle returned by [`Group::ibcast_start`].
pub struct PendingBcast<M> {
    tag: u32,
    root_idx: usize,
    bytes: u64,
    /// Root's own copy (and deferred payload when progress is lazy).
    msg: Option<M>,
    sends_done: bool,
}

/// Completion bookkeeping of a split-phase broadcast (the collective
/// analogue of [`crate::RecvInfo`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BcastInfo {
    /// Simulated seconds idled inside the join.
    pub waited: f64,
    /// Transfer flight time covered by local work between post and join —
    /// the overlap the §IV-B look-ahead pipeline exists to create.
    pub hidden: f64,
}

/// Handle for a split-phase broadcast posted with [`Group::ibcast`]: the
/// root injects what it can at post time, receivers defer their part of
/// the algorithm to [`Group::ibcast_join`] so the transfer rides under
/// whatever local work happens in between.
pub struct BcastRequest<M> {
    algo: BcastAlgo,
    root_idx: usize,
    bytes: u64,
    tag: u32,
    tag2: u32,
    posted_at: f64,
    /// Payload already in hand at post time (root, single-member group).
    resolved: Option<M>,
    /// Root payload whose injection is deferred to the join (vendor
    /// `MPI_Ibcast` without asynchronous progress).
    deferred: Option<M>,
}

impl<M> BcastRequest<M> {
    /// Simulated time the broadcast was posted.
    pub fn posted_at(&self) -> f64 {
        self.posted_at
    }

    /// `true` if this rank already holds the payload (no join work left
    /// beyond bookkeeping).
    pub fn is_resolved(&self) -> bool {
        self.resolved.is_some()
    }
}

impl Group {
    /// Blocking broadcast from group member `root_idx`. The root passes
    /// `Some(msg)`; everyone receives the value. All members must call with
    /// the same `algo` and `bytes`. Equivalent to an [`Group::ibcast`]
    /// joined immediately.
    pub fn bcast<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: Option<M>,
        bytes: u64,
        algo: BcastAlgo,
    ) -> M {
        let req = self.ibcast(comm, root_idx, msg, bytes, algo);
        self.ibcast_join(comm, req).0
    }

    /// Borrowed-buffer broadcast: the root's payload is taken out of `buf`
    /// and everyone's `buf` holds the broadcast value on return. Saves the
    /// caller the `Option` plumbing when the payload lives in a reusable
    /// slot.
    pub fn bcast_buf<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        buf: &mut M,
        bytes: u64,
        algo: BcastAlgo,
    ) {
        let msg = (self.my_idx() == root_idx).then(|| std::mem::take(buf));
        *buf = self.bcast(comm, root_idx, msg, bytes, algo);
    }

    /// Posts a split-phase broadcast. The root performs its part of the
    /// algorithm now (its panels leave via DMA while it computes on);
    /// receivers record the post time and do nothing until
    /// [`Group::ibcast_join`] — any messages relayed through them are
    /// forwarded at join time, modeling software-progress-at-wait exactly
    /// like the vendor non-blocking collectives the paper measured.
    pub fn ibcast<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: Option<M>,
        bytes: u64,
        algo: BcastAlgo,
    ) -> BcastRequest<M> {
        let tag = self.next_tag();
        let tag2 = self.next_tag();
        let mut req = BcastRequest {
            algo,
            root_idx,
            bytes,
            tag,
            tag2,
            posted_at: comm.now(),
            resolved: None,
            deferred: None,
        };
        if self.len() == 1 {
            req.resolved = Some(msg.expect("single-member broadcast needs the payload"));
            return req;
        }
        if self.my_idx() == root_idx {
            match algo {
                BcastAlgo::Lib => {
                    req.resolved = Some(self.lib_bcast(comm, root_idx, msg, bytes, tag, 1.0));
                }
                BcastAlgo::IBcast => {
                    let penalty = comm.spec().tuning.ibcast_penalty;
                    if comm.spec().tuning.ibcast_async_progress {
                        req.resolved =
                            Some(self.lib_bcast(comm, root_idx, msg, bytes, tag, penalty));
                    } else {
                        req.deferred = msg;
                    }
                }
                BcastAlgo::Ring1 => {
                    req.resolved = Some(self.ring_bcast(comm, root_idx, msg, bytes, tag));
                }
                BcastAlgo::Ring1M => {
                    req.resolved = Some(self.ring1m_bcast(comm, root_idx, msg, bytes, tag));
                }
                BcastAlgo::Ring2M => {
                    req.resolved = Some(self.ring2m_bcast(comm, root_idx, msg, bytes, tag, tag2));
                }
            }
        }
        req
    }

    /// Completes a split-phase broadcast, returning the payload and the
    /// overlap bookkeeping. Receivers run their part of the algorithm here
    /// (receive, and forward where the topology needs them to), charged at
    /// the join-time clock.
    pub fn ibcast_join<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        req: BcastRequest<M>,
    ) -> (M, BcastInfo) {
        if let Some(m) = req.resolved {
            return (m, BcastInfo::default());
        }
        let join_start = comm.now();
        let wait0 = comm.wait_total();
        let is_root = self.my_idx() == req.root_idx;
        let m = match req.algo {
            BcastAlgo::Lib => {
                self.lib_bcast(comm, req.root_idx, req.deferred, req.bytes, req.tag, 1.0)
            }
            BcastAlgo::IBcast => {
                let penalty = comm.spec().tuning.ibcast_penalty;
                self.lib_bcast(
                    comm,
                    req.root_idx,
                    req.deferred,
                    req.bytes,
                    req.tag,
                    penalty,
                )
            }
            BcastAlgo::Ring1 => {
                self.ring_bcast(comm, req.root_idx, req.deferred, req.bytes, req.tag)
            }
            BcastAlgo::Ring1M => {
                self.ring1m_bcast(comm, req.root_idx, req.deferred, req.bytes, req.tag)
            }
            BcastAlgo::Ring2M => self.ring2m_bcast(
                comm,
                req.root_idx,
                req.deferred,
                req.bytes,
                req.tag,
                req.tag2,
            ),
        };
        let waited = comm.wait_total() - wait0;
        // Overlap credit: the part of the flight time (post → last arrival)
        // this rank spent on its own work instead of idling. A deferred
        // root injects here without receiving, so it earns none.
        let hidden = if is_root {
            0.0
        } else {
            (join_start.min(comm.last_arrive()) - req.posted_at).max(0.0)
        };
        comm.credit_hidden(hidden);
        (m, BcastInfo { waited, hidden })
    }

    /// Posts a non-blocking broadcast (`MPI_Ibcast`). With asynchronous
    /// progress the root's injection happens now; without it (Spectrum
    /// MPI), nothing moves until [`Group::ibcast_wait`].
    pub fn ibcast_start<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: Option<M>,
        bytes: u64,
    ) -> PendingBcast<M> {
        let tag = self.next_tag();
        let penalty = comm.spec().tuning.ibcast_penalty;
        let async_progress = comm.spec().tuning.ibcast_async_progress;
        let mut pending = PendingBcast {
            tag,
            root_idx,
            bytes,
            msg,
            sends_done: false,
        };
        if self.my_idx() == root_idx && async_progress {
            let m = pending.msg.clone();
            let kept = self.lib_bcast(comm, root_idx, m, bytes, tag, penalty);
            pending.msg = Some(kept);
            pending.sends_done = true;
        }
        pending
    }

    /// Completes a non-blocking broadcast, returning the payload.
    pub fn ibcast_wait<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        mut pending: PendingBcast<M>,
    ) -> M {
        let penalty = comm.spec().tuning.ibcast_penalty;
        if self.my_idx() == pending.root_idx && pending.sends_done {
            return pending.msg.expect("root keeps its payload");
        }
        // Progress-at-wait for everyone else: the root injects now if it
        // hasn't, and non-roots run their part of the library algorithm
        // (receive, and forward when the binomial tree needs them to).
        let m = pending.msg.take();
        self.lib_bcast(
            comm,
            pending.root_idx,
            m,
            pending.bytes,
            pending.tag,
            penalty,
        )
    }

    /// Vendor `MPI_Bcast`: behaviour depends on [`LibQuality`].
    fn lib_bcast<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: Option<M>,
        bytes: u64,
        tag: u32,
        penalty: f64,
    ) -> M {
        let g = self.len();
        if g == 1 {
            return msg.expect("single-member broadcast needs the payload");
        }
        match comm.spec().tuning.lib_quality {
            LibQuality::Pipelined => {
                // Modeled black box: the root is busy for the pipelined
                // serialization of one message copy (times an efficiency
                // factor); everyone hears it after a tree-depth latency.
                if self.my_idx() == root_idx {
                    let m = msg.expect("root must supply the payload");
                    let cost = self.worst_cost(comm);
                    let factor = comm.spec().tuning.lib_pipeline_factor * penalty;
                    let total_busy =
                        factor * bytes as f64 * cost.sec_per_byte + comm.spec().send_overhead;
                    let depth = (g as f64).log2().ceil();
                    let busy_each = total_busy / (g - 1) as f64;
                    for idx in 0..g {
                        if idx != root_idx {
                            comm.send_modeled(
                                self.member(idx),
                                tag,
                                m.clone(),
                                bytes,
                                busy_each,
                                depth * cost.latency * penalty,
                            );
                        }
                    }
                    m
                } else {
                    let (m, _) = comm.recv(self.member(root_idx), tag);
                    m
                }
            }
            LibQuality::Binomial => {
                // Emergent binomial tree over real point-to-point sends. The
                // vendor-IBcast software-progress penalty (> 1.0) dilates
                // each forwarding hop: the library's progress engine costs
                // extra cycles per message it pushes.
                let hop_tax = if penalty > 1.0 {
                    let wc = self.worst_cost(comm);
                    (penalty - 1.0) * (comm.spec().send_overhead + bytes as f64 * wc.sec_per_byte)
                } else {
                    0.0
                };
                let vr = (self.my_idx() + g - root_idx) % g;
                let to_world = |v: usize| self.member((v + root_idx) % g);
                let mut held: Option<M> = if vr == 0 { msg } else { None };
                let mut mask = 1usize;
                while mask < g {
                    if vr & mask != 0 {
                        let (m, _) = comm.recv(to_world(vr - mask), tag);
                        held = Some(m);
                        break;
                    }
                    mask <<= 1;
                }
                mask >>= 1;
                let m = held.expect("binomial receive must precede forwarding");
                while mask > 0 {
                    if vr + mask < g {
                        if hop_tax > 0.0 {
                            comm.charge(hop_tax);
                        }
                        comm.send(to_world(vr + mask), tag, m.clone(), bytes);
                    }
                    mask >>= 1;
                }
                m
            }
        }
    }

    /// Single pipelined ring (Ring1): root → 1 → 2 → … → g-1.
    fn ring_bcast<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: Option<M>,
        bytes: u64,
        tag: u32,
    ) -> M {
        let g = self.len();
        if g == 1 {
            return msg.expect("single-member broadcast needs the payload");
        }
        let chunks = comm.spec().tuning.chunks_for(bytes);
        let chunk_bytes = split_bytes(bytes, chunks);
        let vr = (self.my_idx() + g - root_idx) % g;
        let to_world = |v: usize| self.member((v + root_idx) % g);
        let mut held: Option<M> = if vr == 0 { msg } else { None };
        for c in 0..chunks {
            if vr > 0 {
                let (m, _) = comm.recv(to_world(vr - 1), tag);
                if c == 0 {
                    held = Some(m);
                }
            }
            if vr + 1 < g {
                let payload = if c == 0 {
                    held.clone().expect("chunk 0 carries the payload")
                } else {
                    M::default()
                };
                comm.send(to_world(vr + 1), tag, payload, chunk_bytes[c as usize]);
            }
        }
        held.expect("ring must deliver the payload")
    }

    /// Modified ring (Ring1M): the root feeds two half-chains
    /// (0→1→…→mid-1 and mid→mid+1→…→g-1), halving pipeline depth.
    fn ring1m_bcast<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: Option<M>,
        bytes: u64,
        tag: u32,
    ) -> M {
        let g = self.len();
        if g <= 2 {
            return self.basic_chain(comm, root_idx, msg, bytes, tag);
        }
        let chunks = comm.spec().tuning.chunks_for(bytes);
        let chunk_bytes = split_bytes(bytes, chunks);
        let mid = g / 2 + 1; // first member of the second chain (relative)
        let vr = (self.my_idx() + g - root_idx) % g;
        let to_world = |v: usize| self.member((v + root_idx) % g);
        let mut held: Option<M> = if vr == 0 { msg } else { None };
        for c in 0..chunks {
            let payload_of = |held: &Option<M>, c: u32| {
                if c == 0 {
                    held.clone().expect("chunk 0 carries the payload")
                } else {
                    M::default()
                }
            };
            if vr == 0 {
                // Root feeds both chains.
                comm.send(
                    to_world(1),
                    tag,
                    payload_of(&held, c),
                    chunk_bytes[c as usize],
                );
                comm.send(
                    to_world(mid),
                    tag,
                    payload_of(&held, c),
                    chunk_bytes[c as usize],
                );
            } else {
                let src = if vr == mid { 0 } else { vr - 1 };
                let (m, _) = comm.recv(to_world(src), tag);
                if c == 0 {
                    held = Some(m);
                }
                let next = vr + 1;
                let is_chain_end = next == mid || next == g;
                if !is_chain_end {
                    comm.send(
                        to_world(next),
                        tag,
                        payload_of(&held, c),
                        chunk_bytes[c as usize],
                    );
                }
            }
        }
        held.expect("ring1m must deliver the payload")
    }

    /// Modified double ring (Ring2M): the message is halved; one half
    /// pipelines clockwise (0→1→…), the other counter-clockwise
    /// (0→g-1→…); the two halves meet in the middle. Root injection is one
    /// message volume total, depth is ~g/2.
    fn ring2m_bcast<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: Option<M>,
        bytes: u64,
        tag_cw: u32,
        tag_ccw: u32,
    ) -> M {
        let g = self.len();
        if g <= 2 {
            return self.basic_chain(comm, root_idx, msg, bytes, tag_cw);
        }
        let half = bytes / 2;
        let chunks = comm.spec().tuning.chunks_for(half);
        let cw_bytes = split_bytes(half, chunks);
        let ccw_bytes = split_bytes(bytes - half, chunks);
        let vr = (self.my_idx() + g - root_idx) % g;
        let to_world = |v: usize| self.member((v + root_idx) % g);
        // Clockwise chain covers relative 1..=cw_last; counter-clockwise
        // covers g-1 down to cw_last+1.
        let cw_last = g / 2;
        let mut held: Option<M> = if vr == 0 { msg } else { None };
        for c in 0..chunks {
            let payload_of = |held: &Option<M>, c: u32| {
                if c == 0 {
                    held.clone().expect("chunk 0 carries the payload")
                } else {
                    M::default()
                }
            };
            if vr == 0 {
                comm.send(
                    to_world(1),
                    tag_cw,
                    payload_of(&held, c),
                    cw_bytes[c as usize],
                );
                comm.send(
                    to_world(g - 1),
                    tag_ccw,
                    payload_of(&held, c),
                    ccw_bytes[c as usize],
                );
            } else if vr <= cw_last {
                // Clockwise participant.
                let (m, _) = comm.recv(to_world(vr - 1), tag_cw);
                if c == 0 {
                    held = Some(m);
                }
                if vr < cw_last {
                    comm.send(
                        to_world(vr + 1),
                        tag_cw,
                        payload_of(&held, c),
                        cw_bytes[c as usize],
                    );
                }
            } else {
                // Counter-clockwise participant (vr in cw_last+1 .. g-1).
                let src = if vr == g - 1 { 0 } else { vr + 1 };
                let (m, _) = comm.recv(to_world(src), tag_ccw);
                if c == 0 {
                    held = Some(m);
                }
                if vr > cw_last + 1 {
                    comm.send(
                        to_world(vr - 1),
                        tag_ccw,
                        payload_of(&held, c),
                        ccw_bytes[c as usize],
                    );
                }
            }
        }
        held.expect("ring2m must deliver the payload")
    }

    /// Trivial chain for degenerate group sizes.
    fn basic_chain<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: Option<M>,
        bytes: u64,
        tag: u32,
    ) -> M {
        let g = self.len();
        if g == 1 {
            return msg.expect("single-member broadcast needs the payload");
        }
        if self.my_idx() == root_idx {
            let m = msg.expect("root must supply the payload");
            for idx in 0..g {
                if idx != root_idx {
                    comm.send(self.member(idx), tag, m.clone(), bytes);
                }
            }
            m
        } else {
            let (m, _) = comm.recv(self.member(root_idx), tag);
            m
        }
    }

    /// All-reduce over the group: combine everyone's `msg` with `combine`
    /// (must be associative/commutative) and deliver the total to all.
    /// Binomial reduce to member 0, then library broadcast back.
    pub fn allreduce<M, F>(&mut self, comm: &mut Comm<M>, msg: M, bytes: u64, combine: F) -> M
    where
        M: Clone + Default + Send + 'static,
        F: Fn(M, M) -> M,
    {
        let g = self.len();
        let tag = self.next_tag();
        let vr = self.my_idx();
        let mut acc = msg;
        if g > 1 {
            let mut mask = 1usize;
            while mask < g {
                if vr & mask != 0 {
                    comm.send(self.member(vr - mask), tag, acc.clone(), bytes);
                    break;
                } else if vr + mask < g {
                    let (m, _) = comm.recv(self.member(vr + mask), tag);
                    acc = combine(acc, m);
                }
                mask <<= 1;
            }
        }
        let bcast_tag = self.next_tag();
        let payload = if vr == 0 { Some(acc) } else { None };
        self.lib_bcast(comm, 0, payload, bytes, bcast_tag, 1.0)
    }

    /// Borrowed-buffer all-reduce: combines everyone's `buf` in place, so
    /// callers reusing an accumulation vector skip the take/put dance.
    pub fn allreduce_buf<M, F>(&mut self, comm: &mut Comm<M>, buf: &mut M, bytes: u64, combine: F)
    where
        M: Clone + Default + Send + 'static,
        F: Fn(M, M) -> M,
    {
        let msg = std::mem::take(buf);
        *buf = self.allreduce(comm, msg, bytes, combine);
    }

    /// Gathers one message from every member at `root_idx` (returned in
    /// group order there; `None` elsewhere).
    pub fn gather<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: M,
        bytes: u64,
    ) -> Option<Vec<M>> {
        let g = self.len();
        let tag = self.next_tag();
        if self.my_idx() == root_idx {
            let mut out: Vec<Option<M>> = (0..g).map(|_| None).collect();
            out[root_idx] = Some(msg);
            for (idx, slot) in out.iter_mut().enumerate() {
                if idx != root_idx {
                    let (m, _) = comm.recv(self.member(idx), tag);
                    *slot = Some(m);
                }
            }
            Some(out.into_iter().map(|m| m.unwrap()).collect())
        } else {
            comm.send(self.member(root_idx), tag, msg, bytes);
            None
        }
    }

    /// Scatters one message per member from `root_idx`; returns this
    /// member's piece.
    pub fn scatter<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        pieces: Option<Vec<M>>,
        bytes_each: u64,
    ) -> M {
        let g = self.len();
        let tag = self.next_tag();
        if self.my_idx() == root_idx {
            let pieces = pieces.expect("root must supply the pieces");
            assert_eq!(pieces.len(), g, "one piece per member");
            let mut mine = None;
            for (idx, piece) in pieces.into_iter().enumerate() {
                if idx == root_idx {
                    mine = Some(piece);
                } else {
                    comm.send(self.member(idx), tag, piece, bytes_each);
                }
            }
            mine.expect("root keeps its own piece")
        } else {
            let (m, _) = comm.recv(self.member(root_idx), tag);
            m
        }
    }

    /// Reduction to `root_idx` (binomial fan-in); returns the combined
    /// value at the root, `None` elsewhere.
    pub fn reduce<M, F>(
        &mut self,
        comm: &mut Comm<M>,
        root_idx: usize,
        msg: M,
        bytes: u64,
        combine: F,
    ) -> Option<M>
    where
        M: Clone + Default + Send + 'static,
        F: Fn(M, M) -> M,
    {
        let g = self.len();
        let tag = self.next_tag();
        let vr = (self.my_idx() + g - root_idx) % g;
        let to_world = |v: usize| self.member((v + root_idx) % g);
        let mut acc = msg;
        let mut mask = 1usize;
        while mask < g {
            if vr & mask != 0 {
                comm.send(to_world(vr - mask), tag, acc.clone(), bytes);
                return None;
            } else if vr + mask < g {
                let (m, _) = comm.recv(to_world(vr + mask), tag);
                acc = combine(acc, m);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// All-gather: every member contributes `msg` and receives everyone's
    /// contributions in group order (gather to member 0 + library
    /// broadcast of the assembled vector).
    pub fn allgather<M: Clone + Default + Send + 'static>(
        &mut self,
        comm: &mut Comm<M>,
        msg: M,
        bytes: u64,
    ) -> Vec<M> {
        let g = self.len();
        let gathered = self.gather(comm, 0, msg, bytes);
        // Ship the assembled result back out one slot at a time (slot i is
        // a separate library broadcast so M needs no container variant).
        let mut out = Vec::with_capacity(g);
        for i in 0..g {
            let tag = self.next_tag();
            let payload = gathered.as_ref().map(|v| v[i].clone());
            let m = self.lib_bcast(comm, 0, payload, bytes, tag, 1.0);
            out.push(m);
        }
        out
    }

    /// Dissemination barrier.
    pub fn barrier<M: Clone + Default + Send + 'static>(&mut self, comm: &mut Comm<M>) {
        let g = self.len();
        let tag = self.next_tag();
        let r = self.my_idx();
        let mut k = 1usize;
        while k < g {
            let dst = self.member((r + k) % g);
            let src = self.member((r + g - k) % g);
            comm.send(dst, tag, M::default(), 0);
            let _ = comm.recv(src, tag);
            k <<= 1;
        }
    }

    /// The worst (slowest) p2p path from this rank to any other member —
    /// used to price the modeled vendor broadcast conservatively. Memoized
    /// in the group: membership and the network model never change, and a
    /// full-machine run prices millions of broadcasts on the same groups.
    fn worst_cost<M: Send + 'static>(&mut self, comm: &Comm<M>) -> P2pCost {
        if let Some(c) = self.worst_cost {
            return c;
        }
        let me = comm.loc_of(self.member(self.my_idx()));
        let mut worst = P2pCost {
            latency: 0.0,
            sec_per_byte: 0.0,
        };
        for &m in self.members() {
            let c = comm.spec().net.p2p(me, comm.loc_of(m), 1);
            if c.sec_per_byte > worst.sec_per_byte {
                worst = c;
            }
        }
        self.worst_cost = Some(worst);
        worst
    }
}

fn split_bytes(total: u64, chunks: u32) -> Vec<u64> {
    let base = total / chunks as u64;
    let rem = total % chunks as u64;
    (0..chunks as u64)
        .map(|c| base + if c < rem { 1 } else { 0 })
        .collect()
}

/// Closed-form broadcast completion estimate, used by the critical-path
/// driver at scales where per-message simulation is impractical.
///
/// `cost` is the per-hop point-to-point cost (already including sharers and
/// staging effects); `send_o`/`recv_o` are the software overheads from
/// [`crate::WorldSpec`]. Returns (root busy time, time until the slowest
/// member holds the payload), both relative to a synchronized start.
pub fn bcast_cost(
    algo: BcastAlgo,
    g: usize,
    bytes: u64,
    cost: P2pCost,
    tuning: &CollectiveTuning,
    send_o: f64,
    recv_o: f64,
) -> (f64, f64) {
    if g <= 1 {
        return (0.0, 0.0);
    }
    let b = bytes as f64;
    let spb = cost.sec_per_byte;
    let lat = cost.latency;
    let chunks = tuning.chunks_for(bytes) as f64;
    let chunk = b / chunks;
    match algo {
        BcastAlgo::Lib | BcastAlgo::IBcast => {
            let penalty = if algo == BcastAlgo::IBcast {
                tuning.ibcast_penalty
            } else {
                1.0
            };
            match tuning.lib_quality {
                LibQuality::Pipelined => {
                    let busy = penalty * (tuning.lib_pipeline_factor * b * spb + send_o);
                    let depth = (g as f64).log2().ceil();
                    (busy, busy + penalty * depth * lat + lat + recv_o)
                }
                LibQuality::Binomial => {
                    let depth = (g as f64).log2().ceil();
                    // The IBcast software-progress penalty dilates the send
                    // side of every hop; the wire latency is unaffected.
                    let hop = penalty * (send_o + b * spb) + lat + recv_o;
                    // Root sends up to `depth` full messages back to back.
                    let busy = penalty * depth * (send_o + b * spb);
                    (busy, depth * hop)
                }
            }
        }
        BcastAlgo::Ring1 => {
            let busy = chunks * send_o + b * spb;
            let per_hop = send_o + chunk * spb + lat + recv_o;
            (busy, busy + (g - 2) as f64 * per_hop + lat + recv_o)
        }
        BcastAlgo::Ring1M if g <= 2 => {
            // The emergent algorithm degenerates to a single direct send.
            let busy = send_o + b * spb;
            (busy, busy + lat + recv_o)
        }
        BcastAlgo::Ring1M => {
            // Root injects twice the volume; depth is halved.
            let busy = 2.0 * (chunks * send_o + b * spb);
            let per_hop = send_o + chunk * spb + lat + recv_o;
            let depth = (g as f64 / 2.0 - 1.0).max(0.0);
            (busy, busy + depth * per_hop + lat + recv_o)
        }
        BcastAlgo::Ring2M if g <= 2 => {
            // The emergent algorithm degenerates to a single direct send.
            let busy = send_o + b * spb;
            (busy, busy + lat + recv_o)
        }
        BcastAlgo::Ring2M => {
            // Half the volume each way; depth ~ g/2 hops of half-chunks.
            let busy = 2.0 * chunks * send_o + b * spb;
            let per_hop = send_o + 0.5 * chunk * spb + lat + recv_o;
            let depth = (g as f64 / 2.0 - 1.0).max(0.0);
            (busy, busy + depth * per_hop + lat + recv_o)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldSpec;
    use mxp_netsim::frontier_network;

    fn world(nodes: usize, q: usize, tuning: CollectiveTuning) -> WorldSpec {
        let mut w = WorldSpec::cluster(nodes, q, frontier_network());
        w.tuning = tuning;
        w
    }

    fn row_group(rank: usize, size: usize) -> Group {
        Group::new(rank, (0..size).collect(), 1).unwrap()
    }

    fn check_delivery(algo: BcastAlgo, p: usize, tuning: CollectiveTuning) -> Vec<f64> {
        let w = world(p, 1, tuning);
        w.run::<Vec<u32>, _, _>(move |mut c| {
            let mut g = row_group(c.rank(), p);
            for root in [0usize, p / 2, p - 1] {
                let payload = (0..64)
                    .map(|i| (root * 1000 + i) as u32)
                    .collect::<Vec<_>>();
                let msg = if g.my_idx() == root {
                    Some(payload.clone())
                } else {
                    None
                };
                let got = g.bcast(&mut c, root, msg, 8 << 20, algo);
                assert_eq!(got, payload, "algo {algo:?} root {root} rank {}", c.rank());
            }
            c.now()
        })
    }

    #[test]
    fn all_algorithms_deliver_any_root() {
        for algo in BcastAlgo::ALL {
            for p in [2usize, 3, 5, 8, 13] {
                check_delivery(algo, p, CollectiveTuning::frontier());
                check_delivery(algo, p, CollectiveTuning::summit());
            }
        }
    }

    #[test]
    fn rings_beat_binomial_lib_on_frontier() {
        // The Fig. 8 headline: on Frontier (binomial vendor bcast), the
        // hand-written rings finish faster for large panels.
        let p = 16;
        let bytes: u64 = 64 << 20;
        let finish = |algo: BcastAlgo| -> f64 {
            let w = world(p, 1, CollectiveTuning::frontier());
            let clocks = w.run::<(), _, _>(move |mut c| {
                let mut g = row_group(c.rank(), p);
                let msg = if g.my_idx() == 0 { Some(()) } else { None };
                g.bcast(&mut c, 0, msg, bytes, algo);
                c.now()
            });
            clocks.into_iter().fold(0.0, f64::max)
        };
        let lib = finish(BcastAlgo::Lib);
        let ring1 = finish(BcastAlgo::Ring1);
        let ring2m = finish(BcastAlgo::Ring2M);
        assert!(ring1 < lib, "ring1 {ring1} !< lib {lib}");
        assert!(ring2m < lib, "ring2m {ring2m} !< lib {lib}");
    }

    #[test]
    fn lib_beats_rings_on_summit() {
        // On Summit the pipelined vendor broadcast is near-optimal and the
        // rings' extra latency makes them slightly worse (2.3-11.5% in the
        // paper).
        let p = 16;
        let bytes: u64 = 64 << 20;
        let finish = |algo: BcastAlgo| -> f64 {
            let w = world(p, 1, {
                let mut t = CollectiveTuning::summit();
                t.chunk_bytes = 4 << 20;
                t
            });
            let clocks = w.run::<(), _, _>(move |mut c| {
                let mut g = row_group(c.rank(), p);
                let msg = if g.my_idx() == 0 { Some(()) } else { None };
                g.bcast(&mut c, 0, msg, bytes, algo);
                c.now()
            });
            clocks.into_iter().fold(0.0, f64::max)
        };
        let lib = finish(BcastAlgo::Lib);
        let ring1 = finish(BcastAlgo::Ring1);
        assert!(lib < ring1, "lib {lib} !< ring1 {ring1}");
    }

    #[test]
    fn ibcast_without_async_progress_defers_everything() {
        // Spectrum-MPI-style IBcast: posting it costs nothing; all the time
        // is paid at wait. With async progress the root pays at post.
        let p = 4;
        let bytes: u64 = 32 << 20;
        let post_cost = |tuning: CollectiveTuning| -> f64 {
            let w = world(p, 1, tuning);
            let clocks = w.run::<(), _, _>(move |mut c| {
                let mut g = row_group(c.rank(), p);
                let msg = if g.my_idx() == 0 { Some(()) } else { None };
                let pending = g.ibcast_start(&mut c, 0, msg, bytes);
                let t_post = c.now();
                g.ibcast_wait(&mut c, pending);
                t_post
            });
            clocks[0]
        };
        let lazy = post_cost(CollectiveTuning::summit());
        let eager = post_cost(CollectiveTuning::frontier());
        assert!(lazy < 1e-9, "lazy post should be free, got {lazy}");
        assert!(eager > 1e-4, "eager post should pay injection, got {eager}");
    }

    #[test]
    fn allreduce_sums_vectors() {
        let p = 7;
        let w = world(p, 1, CollectiveTuning::frontier());
        let results = w.run::<Vec<f64>, _, _>(move |mut c| {
            let mut g = row_group(c.rank(), p);
            let mine = vec![c.rank() as f64; 8];
            g.allreduce(&mut c, mine, 64, |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            })
        });
        let expect = (0..p).sum::<usize>() as f64;
        for r in results {
            assert!(r.iter().all(|&v| v == expect));
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let p = 6;
        let w = world(p, 1, CollectiveTuning::frontier());
        let clocks = w.run::<(), _, _>(move |mut c| {
            let mut g = row_group(c.rank(), p);
            // Rank 3 is way behind/ahead.
            c.charge(if c.rank() == 3 { 0.5 } else { 0.0 });
            g.barrier(&mut c);
            c.now()
        });
        let max = clocks.iter().copied().fold(0.0, f64::max);
        for &t in &clocks {
            assert!(t >= 0.5, "barrier must drag everyone past the laggard: {t}");
            assert!(t > 0.99 * max - 1e-3);
        }
    }

    #[test]
    fn closed_form_tracks_emergent_ring1() {
        let p = 12;
        let bytes: u64 = 48 << 20;
        let tuning = CollectiveTuning::frontier();
        let w = world(p, 1, tuning);
        let clocks = w.run::<(), _, _>(move |mut c| {
            let mut g = row_group(c.rank(), p);
            let msg = if g.my_idx() == 0 { Some(()) } else { None };
            g.bcast(&mut c, 0, msg, bytes, BcastAlgo::Ring1);
            c.now()
        });
        let emergent = clocks.into_iter().fold(0.0, f64::max);
        let cost = frontier_network().p2p(
            mxp_netsim::GcdLoc { node: 0, gcd: 0 },
            mxp_netsim::GcdLoc { node: 1, gcd: 0 },
            1,
        );
        let (_, model) = bcast_cost(BcastAlgo::Ring1, p, bytes, cost, &tuning, 1e-6, 0.5e-6);
        let ratio = model / emergent;
        assert!(
            (0.8..1.25).contains(&ratio),
            "closed form {model} vs emergent {emergent} (ratio {ratio})"
        );
    }

    #[test]
    fn closed_form_tracks_emergent_binomial() {
        let p = 16;
        let bytes: u64 = 32 << 20;
        let tuning = CollectiveTuning::frontier();
        let w = world(p, 1, tuning);
        let clocks = w.run::<(), _, _>(move |mut c| {
            let mut g = row_group(c.rank(), p);
            let msg = if g.my_idx() == 0 { Some(()) } else { None };
            g.bcast(&mut c, 0, msg, bytes, BcastAlgo::Lib);
            c.now()
        });
        let emergent = clocks.into_iter().fold(0.0, f64::max);
        let cost = frontier_network().p2p(
            mxp_netsim::GcdLoc { node: 0, gcd: 0 },
            mxp_netsim::GcdLoc { node: 1, gcd: 0 },
            1,
        );
        let (_, model) = bcast_cost(BcastAlgo::Lib, p, bytes, cost, &tuning, 1e-6, 0.5e-6);
        let ratio = model / emergent;
        assert!(
            (0.8..1.25).contains(&ratio),
            "closed form {model} vs emergent {emergent} (ratio {ratio})"
        );
    }

    #[test]
    fn ring2m_root_injects_half_per_direction() {
        let p = 8;
        let bytes: u64 = 16 << 20;
        let w = world(p, 1, CollectiveTuning::frontier());
        let sent = w.run::<(), _, _>(move |mut c| {
            let mut g = row_group(c.rank(), p);
            let msg = if g.my_idx() == 0 { Some(()) } else { None };
            g.bcast(&mut c, 0, msg, bytes, BcastAlgo::Ring2M);
            c.bytes_sent()
        });
        // Root sends the full volume split across two directions.
        assert_eq!(sent[0], bytes);
        // A middle relay forwards roughly half the volume once.
        assert!(sent[2] > 0 && sent[2] <= bytes / 2 + 8);
    }
}
