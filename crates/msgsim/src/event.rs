//! The event-driven backend: every rank is a fiber scheduled by a
//! single-threaded discrete-event loop.
//!
//! The thread backend gives each rank an OS thread and a channel; this
//! backend gives each rank a [`Fiber`] and a mailbox slot in one shared
//! [`EventWorld`]. A rank runs until it needs a message that has not been
//! delivered yet, records what it is waiting for, and yields; the sender
//! that later delivers the matching envelope puts the receiver back on the
//! run queue. Because simulated clocks are pure functions of the
//! send/receive matching — and matching is made schedule-independent by
//! the per-(src, tag) sequence numbers on every envelope — this
//! run-until-block scheduler produces *bit-identical* clocks to the thread
//! backend while holding ~75k ranks in one process.
//!
//! On targets without a fiber implementation the entry point transparently
//! falls back to the thread backend (identical results, thread-bound
//! scale).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use crate::fiber::{fiber_yield, Fiber, Resume};
use crate::world::{Comm, Envelope, WorldSpec};

/// What a blocked rank is waiting for: the `seq`-th message of the
/// `(src, tag)` stream.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Want {
    pub(crate) src: usize,
    pub(crate) tag: u32,
    pub(crate) seq: u64,
}

/// Shared state of one event-backend run: per-rank mailboxes, the blocked
/// table, and the run queue. Single-threaded by construction (`Rc` +
/// `RefCell`); every borrow is transient, so rank code and the scheduler
/// never hold overlapping borrows across a context switch.
pub(crate) struct EventWorld<M> {
    inner: RefCell<EventInner<M>>,
}

struct EventInner<M> {
    /// Envelopes delivered but not yet claimed by the receiving rank.
    mailbox: Vec<Vec<Envelope<M>>>,
    /// `Some(want)` while a rank's fiber is suspended in a receive.
    blocked: Vec<Option<Want>>,
    /// Ranks ready to run, in wake order.
    runq: VecDeque<usize>,
    /// Ranks whose closure has returned.
    finished: Vec<bool>,
}

impl<M> EventWorld<M> {
    fn new(ranks: usize) -> Self {
        EventWorld {
            inner: RefCell::new(EventInner {
                mailbox: (0..ranks).map(|_| Vec::new()).collect(),
                blocked: vec![None; ranks],
                runq: VecDeque::with_capacity(ranks),
                finished: vec![false; ranks],
            }),
        }
    }

    /// Delivers an envelope into `dst`'s mailbox, waking the rank if it is
    /// suspended waiting for exactly this message.
    pub(crate) fn deliver(&self, dst: usize, env: Envelope<M>) {
        let mut inner = self.inner.borrow_mut();
        let wake = matches!(
            inner.blocked[dst],
            Some(w) if w.src == env.src && w.tag == env.tag && w.seq == env.seq
        );
        inner.mailbox[dst].push(env);
        if wake {
            inner.blocked[dst] = None;
            inner.runq.push_back(dst);
        }
    }

    /// Takes every envelope currently in `rank`'s mailbox.
    pub(crate) fn take_mailbox(&self, rank: usize) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.inner.borrow_mut().mailbox[rank])
    }

    /// Suspends the calling rank's fiber until [`deliver`](Self::deliver)
    /// sees the wanted message. The caller re-checks its pending buffer on
    /// return (the envelope is in the mailbox, not handed over directly).
    pub(crate) fn block_until(&self, rank: usize, want: Want) {
        self.inner.borrow_mut().blocked[rank] = Some(want);
        fiber_yield();
    }
}

/// Picks the per-fiber stack size: debug builds carry much fatter frames.
/// Stacks are reserved, not committed — the OS backs only touched pages —
/// so generosity here costs address space, not memory.
fn fiber_stack_size() -> usize {
    if cfg!(debug_assertions) {
        1 << 20 // 1 MiB
    } else {
        256 << 10 // 256 KiB
    }
}

/// Runs one closure per rank, all as fibers of the calling thread, under
/// the discrete-event scheduler. Returns results in rank order; a rank
/// panic is re-thrown (like the thread backend's join), and a
/// communication deadlock panics with a blocked-rank diagnosis instead of
/// hanging.
pub(crate) fn run_event<M, T, F>(spec: &WorldSpec, f: F) -> Vec<T>
where
    M: Send + 'static,
    T: Send,
    F: Fn(Comm<M>) -> T + Sync,
{
    if !crate::fiber::supported() {
        // No fiber implementation on this target: same clocks, OS-thread
        // scale, via the functional transport.
        return spec.run(f);
    }
    let p = spec.ranks();
    let world: Rc<EventWorld<M>> = Rc::new(EventWorld::new(p));
    let results: Rc<RefCell<Vec<Option<T>>>> =
        Rc::new(RefCell::new((0..p).map(|_| None).collect()));
    let spec = Arc::new(spec.clone());
    let stack = fiber_stack_size();
    let mut fibers: Vec<Fiber> = (0..p)
        .map(|rank| {
            let world = Rc::clone(&world);
            let results = Rc::clone(&results);
            let spec = Arc::clone(&spec);
            let f = &f;
            // Safety: every fiber is driven to completion (or abandoned
            // only on the resume_unwind path) before `f`, `world`, and
            // `results` go out of scope below.
            unsafe {
                Fiber::new(stack, move || {
                    let comm = Comm::event(rank, spec, world);
                    let out = f(comm);
                    results.borrow_mut()[rank] = Some(out);
                })
            }
        })
        .collect();
    world.inner.borrow_mut().runq.extend(0..p);
    loop {
        let next = world.inner.borrow_mut().runq.pop_front();
        let Some(r) = next else { break };
        match fibers[r].resume() {
            Resume::Finished => world.inner.borrow_mut().finished[r] = true,
            Resume::Yielded => {}
            Resume::Panicked(payload) => std::panic::resume_unwind(payload),
        }
    }
    {
        let inner = world.inner.borrow();
        let stuck: Vec<usize> = (0..p).filter(|&r| !inner.finished[r]).collect();
        if !stuck.is_empty() {
            let detail: Vec<String> = stuck
                .iter()
                .take(8)
                .map(|&r| match inner.blocked[r] {
                    Some(w) => format!(
                        "rank {r} waiting for (src {}, tag {:#x}, seq {})",
                        w.src, w.tag, w.seq
                    ),
                    None => format!("rank {r} suspended outside a receive"),
                })
                .collect();
            panic!(
                "event backend deadlock: {} of {p} ranks never finished; {}",
                stuck.len(),
                detail.join("; ")
            );
        }
    }
    drop(fibers);
    let results = Rc::try_unwrap(results)
        .unwrap_or_else(|_| unreachable!("fibers finished but still share the result buffer"))
        .into_inner();
    results
        .into_iter()
        .map(|v| v.expect("finished rank left no result"))
        .collect()
}
