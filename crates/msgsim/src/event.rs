//! The event-driven backend: every rank is a fiber scheduled by a sharded
//! parallel discrete-event scheduler.
//!
//! The thread backend gives each rank an OS thread and a channel; this
//! backend gives each rank a [`Fiber`] and an indexed mailbox slot in one
//! shared [`EventWorld`]. A rank runs until it needs a message that has not
//! been delivered yet, records what it is waiting for, and yields; the
//! sender that later delivers the matching envelope puts the receiver back
//! on the run queue. Because simulated clocks are pure functions of the
//! send/receive matching — and matching is made schedule-independent by
//! the per-(src, tag) sequence numbers on every envelope — *any* schedule
//! of the fibers produces bit-identical clocks to the thread backend, which
//! is what licenses running the scheduler itself in parallel.
//!
//! # Sharding
//!
//! The rank space is partitioned into `K` contiguous shards of
//! `ceil(p / K)` ranks. Each shard owns its ranks' fibers, mailboxes,
//! blocked table, and run queue, and is driven by exactly one worker
//! thread; that single-writer discipline is why the per-shard state lives
//! in an `UnsafeCell` instead of behind a lock. The only cross-thread
//! traffic is an envelope whose destination lives on another shard: the
//! sender pushes it into the destination shard's mutex-protected inbox
//! (bumping the global `in_flight` count first) and rings that shard's
//! condvar. Workers alternate between draining their inbox into local
//! mailboxes and resuming runnable fibers.
//!
//! # Termination
//!
//! "Globally idle" must be distinguished from "one inbox still has mail".
//! A worker with nothing to run parks on its condvar after registering in
//! the global `idle` count — the decrement happens only while holding its
//! own inbox lock, so a parked worker's state is frozen by that lock. The
//! worker that believes it is the last idler verifies: it acquires *all*
//! shard inbox locks in index order and re-checks `idle == K`,
//! `in_flight == 0`, and that every inbox is empty while holding them.
//! Any still-active worker implies `idle < K`, and every state transition
//! that could create work requires a lock the verifier holds, so a
//! successful sweep proves global quiescence; the verifier then sets the
//! `terminated` flag and wakes everyone. Quiescence with unfinished ranks
//! is a communication deadlock: the caller panics with a per-rank
//! diagnosis naming each stuck rank's shard and the `(src, tag, seq)` it
//! waits on (and the shard that owed it).
//!
//! On targets without a fiber implementation the entry point transparently
//! falls back to the thread backend (identical results, thread-bound
//! scale).

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::fiber::{fiber_yield, Fiber, Resume};
use crate::hash::FxHashMap;
use crate::world::{Comm, Envelope, WorldSpec};

/// What a blocked rank is waiting for: the `seq`-th message of the
/// `(src, tag)` stream. Kept to 16 bytes (`u32` rank) so the whole
/// per-rank scheduling record fits one cache line.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Want {
    pub(crate) seq: u64,
    pub(crate) src: u32,
    pub(crate) tag: u32,
}

/// Per-rank store of delivered-but-unclaimed envelopes.
///
/// Matching is exact on `(src, tag, seq)`, so storage order is free to be
/// anything. The typical mailbox is shallow — a handful of envelopes from
/// the streams live in the current iteration — and for that regime a flat
/// `Vec` scanned linearly and popped with `swap_remove` is one warm
/// allocation and zero hashing. A mailbox that grows past [`SPILL_DEPTH`]
/// (many-to-one traffic at scale) migrates once to a `(src, tag)`-indexed
/// map of per-stream queues, where each stream stays in ascending `seq`
/// order (senders stamp sequences monotonically and delivery preserves
/// per-stream order): the common in-order wait pops the front, an
/// out-of-order wait binary searches. Emptied queues recycle through a
/// small free list instead of being reallocated for the next one-shot
/// collective tag.
enum PendingSet<M> {
    Flat(Vec<Envelope<M>>),
    /// Boxed so the common `Flat` case keeps the enum pointer-sized.
    Indexed(Box<IndexedSet<M>>),
}

/// The spilled form of a deep mailbox (see [`PendingSet`]).
struct IndexedSet<M> {
    map: FxHashMap<(usize, u32), VecDeque<Envelope<M>>>,
    free: Vec<VecDeque<Envelope<M>>>,
}

/// Flat-mailbox depth beyond which linear scanning loses to indexing.
const SPILL_DEPTH: usize = 48;

/// Queues kept for reuse per rank; collectives allocate a fresh tag per
/// operation, so a small cap bounds memory while still covering the
/// handful of streams live at once.
const FREE_QUEUES: usize = 4;

impl<M> PendingSet<M> {
    fn new() -> Self {
        PendingSet::Flat(Vec::new())
    }

    fn insert(&mut self, env: Envelope<M>) {
        match self {
            PendingSet::Flat(buf) if buf.len() < SPILL_DEPTH => buf.push(env),
            PendingSet::Flat(buf) => {
                // Deep mailbox: migrate once to the indexed form. Drain in
                // order — per-stream delivery order is ascending `seq`.
                let mut map = FxHashMap::default();
                for e in buf.drain(..) {
                    map.entry((e.src, e.tag))
                        .or_insert_with(VecDeque::new)
                        .push_back(e);
                }
                map.entry((env.src, env.tag))
                    .or_insert_with(VecDeque::new)
                    .push_back(env);
                *self = PendingSet::Indexed(Box::new(IndexedSet {
                    map,
                    free: Vec::new(),
                }));
            }
            PendingSet::Indexed(set) => {
                let IndexedSet { map, free } = &mut **set;
                map.entry((env.src, env.tag))
                    .or_insert_with(|| free.pop().unwrap_or_default())
                    .push_back(env);
            }
        }
    }

    fn take(&mut self, src: usize, tag: u32, seq: u64) -> Option<Envelope<M>> {
        match self {
            PendingSet::Flat(buf) => {
                let idx = buf
                    .iter()
                    .position(|e| e.seq == seq && e.src == src && e.tag == tag)?;
                Some(buf.swap_remove(idx))
            }
            PendingSet::Indexed(set) => {
                let IndexedSet { map, free } = &mut **set;
                let q = map.get_mut(&(src, tag))?;
                let env = if q.front().is_some_and(|e| e.seq == seq) {
                    q.pop_front()
                } else {
                    let idx = q.binary_search_by(|e| e.seq.cmp(&seq)).ok()?;
                    q.remove(idx)
                }?;
                if q.is_empty() {
                    let q = map.remove(&(src, tag)).expect("emptied queue vanished");
                    if free.len() < FREE_QUEUES {
                        free.push(q);
                    }
                }
                Some(env)
            }
        }
    }

    fn peek_arrive(&self, src: usize, tag: u32, seq: u64) -> Option<f64> {
        match self {
            PendingSet::Flat(buf) => buf
                .iter()
                .find(|e| e.seq == seq && e.src == src && e.tag == tag)
                .map(|e| e.arrive),
            PendingSet::Indexed(set) => {
                let q = set.map.get(&(src, tag))?;
                let idx = q.binary_search_by(|e| e.seq.cmp(&seq)).ok()?;
                q.get(idx).map(|e| e.arrive)
            }
        }
    }
}

/// Scheduling record of one rank. Every delivery touches both the mailbox
/// and the blocked word, so they share a struct — and with the indexed
/// mailbox boxed the whole record stays within one cache line, making a
/// delivery to a cold rank one miss instead of three.
struct RankState<M> {
    /// Delivered-but-unclaimed envelopes.
    pending: PendingSet<M>,
    /// `Some(want)` while the rank's fiber is suspended in a receive.
    blocked: Option<Want>,
    /// Whether the rank's closure has returned.
    done: bool,
}

/// State owned by exactly one worker thread (single-writer; see the
/// module-level safety argument).
struct ShardLocal<M> {
    /// First global rank of this shard.
    base: usize,
    /// Per-local-rank scheduling records.
    ranks: Vec<RankState<M>>,
    /// Local indices ready to run, in wake order.
    runq: VecDeque<u32>,
}

/// One shard: a concurrent inbox for cross-shard envelopes plus the
/// owner-thread-only scheduling state.
struct Shard<M> {
    inbox: Mutex<Vec<(usize, Envelope<M>)>>,
    cv: Condvar,
    local: UnsafeCell<ShardLocal<M>>,
}

// Safety: `local` is only touched by the shard's owning worker thread
// while workers are live (enforced by `debug_assert`s against
// WORKER_SHARD), and by the main thread after every worker has been
// joined; `inbox` and `cv` are internally synchronized.
unsafe impl<M: Send> Sync for Shard<M> {}

/// Scheduler phase accumulators of one worker, folded into the run-wide
/// [`EventStats`] when the worker exits.
#[derive(Default)]
struct AggStats {
    run_secs: f64,
    deliver_secs: f64,
    idle_secs: f64,
    resumes: u64,
    local_msgs: u64,
    cross_msgs: u64,
}

/// Shared state of one event-backend run.
pub(crate) struct EventWorld<M> {
    shards: Vec<Shard<M>>,
    /// Ranks per shard (last shard may be smaller).
    chunk: usize,
    ranks: usize,
    /// Cross-shard envelopes pushed but not yet drained by their target.
    in_flight: AtomicUsize,
    /// Workers currently parked on their condvar.
    idle: AtomicUsize,
    /// Set by a successful termination sweep: globally quiescent.
    terminated: AtomicBool,
    /// Set when a fiber panicked: all workers abandon their fibers.
    aborted: AtomicBool,
    /// First captured panic payload, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Per-worker phase times, folded in as workers exit.
    agg: Mutex<AggStats>,
}

/// Compile-time probe switch: build with `HPLAI_EVENT_PROBE=1 cargo build`
/// to print per-path cycle totals after each run. Zero cost when off.
const PROBE: bool = option_env!("HPLAI_EVENT_PROBE").is_some();

#[inline(always)]
fn probe_cycles() -> u64 {
    #[cfg(target_arch = "x86_64")]
    if PROBE {
        return unsafe { core::arch::x86_64::_rdtsc() };
    }
    0
}

thread_local! {
    /// Which shard the current thread owns (`usize::MAX` off the workers).
    static WORKER_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Probe accumulators (deliver cycles, obtain cycles).
    static PROBE_DELIVER: Cell<u64> = const { Cell::new(0) };
    static PROBE_OBTAIN: Cell<u64> = const { Cell::new(0) };
    /// Same-shard deliveries made from this worker (fibers included).
    static LOCAL_MSGS: Cell<u64> = const { Cell::new(0) };
    /// Cross-shard deliveries made from this worker.
    static CROSS_MSGS: Cell<u64> = const { Cell::new(0) };
    /// Stats of the most recent `run_event` driven from this thread.
    static LAST_STATS: Cell<Option<EventStats>> = const { Cell::new(None) };
}

/// Scheduler cost breakdown of one event-backend run, for perf-report
/// provenance and the `event_scale` per-phase output. All wall-clock
/// quantities are host-dependent; none of them feed back into simulated
/// results.
#[derive(Clone, Copy, Debug, Default)]
pub struct EventStats {
    /// Shards (worker threads) the run was partitioned into.
    pub shards: usize,
    /// Ranks hosted.
    pub ranks: usize,
    /// End-to-end host seconds of the scheduler scope.
    pub wall_secs: f64,
    /// Worker seconds spent inside rank fibers (rank compute + context
    /// switches), summed across workers.
    pub run_secs: f64,
    /// Worker seconds spent draining cross-shard inboxes.
    pub deliver_secs: f64,
    /// Worker seconds spent parked with nothing runnable.
    pub idle_secs: f64,
    /// Estimated seconds of `run_secs` that were context-switch overhead:
    /// the per-process calibrated switch cost times `resumes`.
    pub switch_secs_est: f64,
    /// Fiber resumes performed.
    pub resumes: u64,
    /// Envelopes delivered within their sender's shard.
    pub local_msgs: u64,
    /// Envelopes that crossed shards through an inbox.
    pub cross_msgs: u64,
    /// Fiber stacks recycled from the pool during this run.
    pub stacks_reused: u64,
    /// Fiber stacks freshly allocated during this run.
    pub stacks_allocated: u64,
}

impl EventStats {
    /// Fraction of total worker time that was scheduling overhead rather
    /// than rank execution: deliver + idle + estimated switch cost over
    /// the whole worker budget. 0.0 when nothing was measured.
    pub fn sched_overhead(&self) -> f64 {
        let total = self.run_secs + self.deliver_secs + self.idle_secs;
        if total <= 0.0 {
            return 0.0;
        }
        let sched = (self.deliver_secs + self.idle_secs + self.switch_secs_est).min(total);
        sched / total
    }
}

/// Scheduler statistics of the most recent [`WorldSpec::run_event`]
/// completed on the calling thread, if any. Cleared at the start of each
/// run (and left `None` by the thread-backend fallback), so a `Some` is
/// always from the run that just returned.
pub fn last_event_stats() -> Option<EventStats> {
    LAST_STATS.with(|s| s.get())
}

impl<M: Send> EventWorld<M> {
    fn new(ranks: usize, k: usize, chunk: usize) -> Self {
        let shards = (0..k)
            .map(|s| {
                let base = s * chunk;
                let n = chunk.min(ranks - base);
                Shard {
                    inbox: Mutex::new(Vec::new()),
                    cv: Condvar::new(),
                    local: UnsafeCell::new(ShardLocal {
                        base,
                        ranks: (0..n)
                            .map(|_| RankState {
                                pending: PendingSet::new(),
                                blocked: None,
                                done: false,
                            })
                            .collect(),
                        runq: (0..n as u32).collect(),
                    }),
                }
            })
            .collect();
        EventWorld {
            shards,
            chunk,
            ranks,
            in_flight: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            terminated: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            panic: Mutex::new(None),
            agg: Mutex::new(AggStats::default()),
        }
    }

    #[inline]
    fn shard_of(&self, rank: usize) -> usize {
        rank / self.chunk
    }

    /// Owner-thread access to a shard's scheduling state.
    ///
    /// # Safety
    ///
    /// Caller must be the shard's worker thread (checked in debug builds),
    /// or the main thread after all workers have been joined.
    #[allow(clippy::mut_from_ref)]
    unsafe fn local_mut(&self, shard: usize) -> &mut ShardLocal<M> {
        &mut *self.shards[shard].local.get()
    }

    /// Inserts an envelope into a local mailbox, waking the target rank if
    /// it is suspended waiting for exactly this message.
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::local_mut`].
    unsafe fn deliver_local(&self, shard: usize, li: usize, env: Envelope<M>) {
        debug_assert_eq!(WORKER_SHARD.get(), shard, "local delivery off-owner");
        let loc = self.local_mut(shard);
        let rs = &mut loc.ranks[li];
        let wake = matches!(
            rs.blocked,
            Some(w) if w.seq == env.seq && w.src as usize == env.src && w.tag == env.tag
        );
        if wake {
            rs.blocked = None;
            loc.runq.push_back(li as u32);
        }
        rs.pending.insert(env);
    }

    /// Routes an envelope to `dst`: directly into the mailbox when the
    /// destination shares the sender's shard, through the destination
    /// shard's inbox (and condvar) otherwise.
    pub(crate) fn deliver(&self, dst: usize, env: Envelope<M>) {
        let pc = probe_cycles();
        let shard = self.shard_of(dst);
        let li = dst - shard * self.chunk;
        if shard == WORKER_SHARD.get() {
            LOCAL_MSGS.set(LOCAL_MSGS.get() + 1);
            unsafe { self.deliver_local(shard, li, env) };
        } else {
            CROSS_MSGS.set(CROSS_MSGS.get() + 1);
            // Order matters for termination: the in-flight count rises
            // before the envelope becomes visible, so a verifier that
            // reads 0 while holding every inbox lock cannot miss mail.
            self.in_flight.fetch_add(1, SeqCst);
            let target = &self.shards[shard];
            let mut inbox = target.inbox.lock().unwrap();
            inbox.push((li, env));
            target.cv.notify_one();
        }
        if PROBE {
            PROBE_DELIVER.set(PROBE_DELIVER.get() + (probe_cycles() - pc));
        }
    }

    /// Removes and returns the `(src, tag, seq)` envelope for `rank`,
    /// suspending the rank's fiber until it has been delivered. Called
    /// from the rank's own fiber, i.e. on its shard's worker thread.
    pub(crate) fn obtain(&self, rank: usize, src: usize, tag: u32, seq: u64) -> Envelope<M> {
        let shard = self.shard_of(rank);
        let li = rank - shard * self.chunk;
        debug_assert_eq!(WORKER_SHARD.get(), shard, "obtain off-owner");
        loop {
            {
                let pc = probe_cycles();
                let rs = &mut unsafe { self.local_mut(shard) }.ranks[li];
                if let Some(env) = rs.pending.take(src, tag, seq) {
                    if PROBE {
                        PROBE_OBTAIN.set(PROBE_OBTAIN.get() + (probe_cycles() - pc));
                    }
                    return env;
                }
                rs.blocked = Some(Want {
                    seq,
                    src: src as u32,
                    tag,
                });
            }
            // No shard state is borrowed across the switch: the worker
            // (same thread, below this frame) is free to mutate it.
            fiber_yield();
        }
    }

    /// Arrival timestamp of the `(src, tag, seq)` envelope if it has been
    /// delivered to `rank` and not yet claimed. Advisory (see
    /// `Comm::test_recv`): never blocks, never consumes.
    pub(crate) fn peek_arrive(&self, rank: usize, src: usize, tag: u32, seq: u64) -> Option<f64> {
        let shard = self.shard_of(rank);
        let li = rank - shard * self.chunk;
        debug_assert_eq!(WORKER_SHARD.get(), shard, "peek off-owner");
        unsafe { self.local_mut(shard) }.ranks[li]
            .pending
            .peek_arrive(src, tag, seq)
    }
}

/// One rank's result slot, written by its fiber, read after the join.
struct ResultCell<T>(UnsafeCell<Option<T>>);

// Safety: slot `rank` is written exactly once, by rank `rank`'s fiber on
// its worker thread; the main thread reads only after joining all workers.
unsafe impl<T: Send> Sync for ResultCell<T> {}

/// Picks the per-fiber stack size: debug builds carry much fatter frames.
/// Stacks are reserved, not committed — the OS backs only touched pages —
/// so generosity here costs address space, not memory.
fn fiber_stack_size() -> usize {
    if cfg!(debug_assertions) {
        1 << 20 // 1 MiB
    } else {
        256 << 10 // 256 KiB
    }
}

/// Resolves the shard count: an explicit `WorldSpec::event_shards` wins,
/// then the `HPLAI_EVENT_SHARDS` environment variable (mirroring the
/// `RAYON_NUM_THREADS` convention), then the machine's parallelism — the
/// automatic path additionally refuses to spin up worker threads that
/// small worlds cannot feed.
fn resolve_shards(spec: &WorldSpec, ranks: usize) -> usize {
    let req = if spec.event_shards != 0 {
        spec.event_shards
    } else if let Some(k) = std::env::var("HPLAI_EVENT_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&k| k > 0)
    {
        k
    } else {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        hw.min(ranks.div_ceil(4096))
    };
    req.clamp(1, ranks.max(1))
}

/// The worker loop of one shard: drain the inbox, run local fibers, and
/// when both are dry run the idle/termination protocol described at the
/// module level.
fn shard_worker<M, T, F>(
    world: &Arc<EventWorld<M>>,
    shard: usize,
    spec: &Arc<WorldSpec>,
    f: &F,
    results: &[ResultCell<T>],
    stack_size: usize,
) where
    M: Send + 'static,
    T: Send,
    F: Fn(Comm<M>) -> T + Sync,
{
    WORKER_SHARD.set(shard);
    LOCAL_MSGS.set(0);
    CROSS_MSGS.set(0);
    let k = world.shards.len();
    let base = shard * world.chunk;
    let n_local = world.chunk.min(world.ranks - base);
    let mut fibers: Vec<Option<Fiber>> = (0..n_local).map(|_| None).collect();
    let mut scratch: Vec<(usize, Envelope<M>)> = Vec::new();
    let me = &world.shards[shard];
    let mut ws = AggStats::default();
    /// Fiber resumes between inbox/abort checks: long enough to amortize
    /// the lock, short enough to keep cross-shard latency bounded.
    const STREAK: usize = 256;
    'outer: loop {
        if world.aborted.load(SeqCst) || world.terminated.load(SeqCst) {
            break;
        }
        // Drain the cross-shard inbox into local mailboxes. The swap keeps
        // both buffers' capacity alive — no allocation per batch.
        {
            let mut inbox = me.inbox.lock().unwrap();
            std::mem::swap(&mut *inbox, &mut scratch);
        }
        if !scratch.is_empty() {
            let t0 = Instant::now();
            let n = scratch.len();
            for (li, env) in scratch.drain(..) {
                unsafe { world.deliver_local(shard, li, env) };
            }
            world.in_flight.fetch_sub(n, SeqCst);
            ws.deliver_secs += t0.elapsed().as_secs_f64();
        }
        // Run local fibers until the queue dries up or the streak budget
        // says to look at the inbox again.
        let t0 = Instant::now();
        let mut streak = 0;
        while streak < STREAK {
            let Some(li) = (unsafe { world.local_mut(shard) }).runq.pop_front() else {
                break;
            };
            let li = li as usize;
            streak += 1;
            ws.resumes += 1;
            let fiber = fibers[li].get_or_insert_with(|| {
                // Fibers are created lazily on their owner thread (a fiber
                // is not Send) with a pooled stack.
                let rank = base + li;
                let world = Arc::clone(world);
                let spec = Arc::clone(spec);
                // Safety: the fiber is driven to completion — or abandoned
                // with no further resumes on the abort path — before `f`
                // and `results` (borrowed from `run_event`'s frame) die at
                // the end of the worker scope.
                unsafe {
                    Fiber::new(stack_size, move || {
                        let comm = Comm::event(rank, spec, world);
                        let out = f(comm);
                        *results[rank].0.get() = Some(out);
                    })
                }
            });
            match fiber.resume() {
                Resume::Yielded => {}
                Resume::Finished => {
                    let fiber = fibers[li].take().expect("finished fiber vanished");
                    fiber.recycle();
                    unsafe { world.local_mut(shard) }.ranks[li].done = true;
                }
                Resume::Panicked(payload) => {
                    let mut slot = world.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    drop(slot);
                    world.aborted.store(true, SeqCst);
                    for s in &world.shards {
                        s.cv.notify_all();
                    }
                    ws.run_secs += t0.elapsed().as_secs_f64();
                    break 'outer;
                }
            }
        }
        if streak > 0 {
            ws.run_secs += t0.elapsed().as_secs_f64();
            continue;
        }
        // Nothing runnable: park, and maybe prove global quiescence.
        let mut inbox = me.inbox.lock().unwrap();
        if !inbox.is_empty() {
            continue;
        }
        world.idle.fetch_add(1, SeqCst);
        let t_idle = Instant::now();
        loop {
            if world.aborted.load(SeqCst) || world.terminated.load(SeqCst) {
                world.idle.fetch_sub(1, SeqCst);
                ws.idle_secs += t_idle.elapsed().as_secs_f64();
                break 'outer;
            }
            if !inbox.is_empty() {
                break;
            }
            if world.idle.load(SeqCst) == k && world.in_flight.load(SeqCst) == 0 {
                // Verification sweep: acquire every inbox lock in index
                // order (total order — concurrent sweeps cannot deadlock)
                // and re-check the quiescence conditions while holding
                // them all.
                drop(inbox);
                let held: Vec<_> = world
                    .shards
                    .iter()
                    .map(|s| s.inbox.lock().unwrap())
                    .collect();
                let quiescent = world.idle.load(SeqCst) == k
                    && world.in_flight.load(SeqCst) == 0
                    && held.iter().all(|q| q.is_empty());
                if quiescent {
                    world.terminated.store(true, SeqCst);
                    for s in &world.shards {
                        s.cv.notify_all();
                    }
                    drop(held);
                    world.idle.fetch_sub(1, SeqCst);
                    ws.idle_secs += t_idle.elapsed().as_secs_f64();
                    break 'outer;
                }
                drop(held);
                inbox = me.inbox.lock().unwrap();
                continue;
            }
            inbox = me.cv.wait(inbox).unwrap();
        }
        world.idle.fetch_sub(1, SeqCst);
        ws.idle_secs += t_idle.elapsed().as_secs_f64();
        drop(inbox);
    }
    if PROBE {
        eprintln!(
            "probe shard {shard}: deliver {:.2}e9 cyc, obtain {:.2}e9 cyc",
            PROBE_DELIVER.get() as f64 / 1e9,
            PROBE_OBTAIN.get() as f64 / 1e9,
        );
        PROBE_DELIVER.set(0);
        PROBE_OBTAIN.set(0);
    }
    let mut agg = world.agg.lock().unwrap();
    agg.run_secs += ws.run_secs;
    agg.deliver_secs += ws.deliver_secs;
    agg.idle_secs += ws.idle_secs;
    agg.resumes += ws.resumes;
    agg.local_msgs += LOCAL_MSGS.get();
    agg.cross_msgs += CROSS_MSGS.get();
}

/// Runs one closure per rank, all as fibers over `K` shard workers, under
/// the discrete-event scheduler. Returns results in rank order; a rank
/// panic is re-thrown (like the thread backend's join), and a
/// communication deadlock panics with a blocked-rank diagnosis instead of
/// hanging.
pub(crate) fn run_event<M, T, F>(spec: &WorldSpec, f: F) -> Vec<T>
where
    M: Send + 'static,
    T: Send,
    F: Fn(Comm<M>) -> T + Sync,
{
    LAST_STATS.set(None);
    if !crate::fiber::supported() {
        // No fiber implementation on this target: same clocks, OS-thread
        // scale, via the functional transport.
        return spec.run(f);
    }
    let p = spec.ranks();
    if p == 0 {
        return Vec::new();
    }
    let k = resolve_shards(spec, p);
    let chunk = p.div_ceil(k);
    let k = p.div_ceil(chunk); // drop shards the rounding left empty
    let world: Arc<EventWorld<M>> = Arc::new(EventWorld::new(p, k, chunk));
    let results: Vec<ResultCell<T>> = (0..p).map(|_| ResultCell(UnsafeCell::new(None))).collect();
    let spec_arc = Arc::new(spec.clone());
    let stack_size = fiber_stack_size();
    let (reused0, alloc0) = crate::fiber::stack_pool_stats();
    let t0 = Instant::now();
    // Shard 0 runs inline on the calling thread: a 1-shard run costs no
    // thread spawn, and callers that batch many runs (the multi-solve
    // service) keep their thread-local scratch arenas warm across jobs.
    std::thread::scope(|scope| {
        for shard in 1..k {
            let world = &world;
            let spec_arc = &spec_arc;
            let f = &f;
            let results = &results[..];
            scope.spawn(move || shard_worker(world, shard, spec_arc, f, results, stack_size));
        }
        shard_worker(&world, 0, &spec_arc, &f, &results, stack_size);
    });
    WORKER_SHARD.set(usize::MAX);
    let wall_secs = t0.elapsed().as_secs_f64();
    if let Some(payload) = world.panic.lock().unwrap().take() {
        std::panic::resume_unwind(payload);
    }
    // Quiescent, workers joined: exclusive access to every shard's state.
    let mut stuck: Vec<(usize, Option<Want>)> = Vec::new();
    for shard in 0..k {
        let loc = unsafe { world.local_mut(shard) };
        for (li, rs) in loc.ranks.iter().enumerate() {
            if !rs.done {
                stuck.push((loc.base + li, rs.blocked));
            }
        }
    }
    if !stuck.is_empty() {
        let detail: Vec<String> = stuck
            .iter()
            .take(8)
            .map(|&(r, w)| match w {
                Some(w) => format!(
                    "rank {r} (shard {}) waiting for (src {} @ shard {}, tag {:#x}, seq {})",
                    world.shard_of(r),
                    w.src,
                    world.shard_of(w.src as usize),
                    w.tag,
                    w.seq
                ),
                None => format!(
                    "rank {r} (shard {}) suspended outside a receive",
                    world.shard_of(r)
                ),
            })
            .collect();
        panic!(
            "event backend deadlock: {} of {p} ranks never finished across {k} shard(s); {}",
            stuck.len(),
            detail.join("; ")
        );
    }
    let (reused1, alloc1) = crate::fiber::stack_pool_stats();
    let agg = world.agg.lock().unwrap();
    let stats = EventStats {
        shards: k,
        ranks: p,
        wall_secs,
        run_secs: agg.run_secs,
        deliver_secs: agg.deliver_secs,
        idle_secs: agg.idle_secs,
        switch_secs_est: crate::fiber::switch_cost_estimate() * agg.resumes as f64,
        resumes: agg.resumes,
        local_msgs: agg.local_msgs,
        cross_msgs: agg.cross_msgs,
        stacks_reused: reused1.saturating_sub(reused0),
        stacks_allocated: alloc1.saturating_sub(alloc0),
    };
    drop(agg);
    LAST_STATS.set(Some(stats));
    results
        .into_iter()
        .map(|c| c.0.into_inner().expect("finished rank left no result"))
        .collect()
}
