//! Link-level fault injection for the message runtime.
//!
//! The paper's operational findings include network failure modes the
//! compute-side fleet scan cannot see: links whose latency spikes, whose
//! effective bandwidth collapses under congestion or misrouting, and
//! messages that stall outright ("fabric hangs"). A [`LinkFault`] attaches
//! such a state to the [`crate::WorldSpec`]; every matching send pays the
//! added latency and the bandwidth derating, so the degradation shows up in
//! the receivers' wait clocks exactly where a progress monitor would see
//! it on the real machine.

/// Which traffic a link fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkScope {
    /// Only messages from `src` to `dst` (one directed rank pair).
    Pair {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
    },
    /// Every message sent by this rank (e.g. its NIC is degraded) — this
    /// is what a broadcast step rooted at the rank experiences.
    From(usize),
    /// Every message delivered to this rank.
    To(usize),
    /// All traffic (fabric-wide event).
    All,
}

impl LinkScope {
    /// `true` if a `src → dst` message falls under this scope.
    pub fn matches(&self, src: usize, dst: usize) -> bool {
        match *self {
            LinkScope::Pair { src: s, dst: d } => src == s && dst == d,
            LinkScope::From(r) => src == r,
            LinkScope::To(r) => dst == r,
            LinkScope::All => true,
        }
    }
}

/// An injected link-level fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Traffic the fault applies to.
    pub scope: LinkScope,
    /// Simulated time (seconds, sender clock) the fault starts; 0.0 means
    /// present from the beginning of the run.
    pub onset: f64,
    /// Seconds added to the delivery of every matching message — models
    /// both latency spikes and per-message stalls.
    pub extra_latency: f64,
    /// Effective-bandwidth divisor (≥ 1.0): serialization time of matching
    /// messages is multiplied by this. 10.0 models a bandwidth collapse to
    /// a tenth of nominal.
    pub bandwidth_factor: f64,
}

impl LinkFault {
    /// A latency spike of `seconds` on the given scope, active from t = 0.
    pub fn latency(scope: LinkScope, seconds: f64) -> Self {
        LinkFault {
            scope,
            onset: 0.0,
            extra_latency: seconds,
            bandwidth_factor: 1.0,
        }
    }

    /// A bandwidth collapse by `factor` (≥ 1.0) on the given scope, active
    /// from t = 0.
    pub fn bandwidth_collapse(scope: LinkScope, factor: f64) -> Self {
        assert!(factor >= 1.0, "bandwidth factor must be >= 1");
        LinkFault {
            scope,
            onset: 0.0,
            extra_latency: 0.0,
            bandwidth_factor: factor,
        }
    }

    /// Delays activation until simulated time `onset`.
    pub fn starting_at(mut self, onset: f64) -> Self {
        self.onset = onset;
        self
    }

    /// `true` if this fault affects a `src → dst` message sent at
    /// simulated time `now`.
    pub fn applies(&self, src: usize, dst: usize, now: f64) -> bool {
        now >= self.onset && self.scope.matches(src, dst)
    }
}

/// Combined effect of a fault set on one message: `(extra latency seconds,
/// serialization-time multiplier)`.
pub fn fault_effect(faults: &[LinkFault], src: usize, dst: usize, now: f64) -> (f64, f64) {
    let mut lat = 0.0;
    let mut bw = 1.0;
    for f in faults {
        if f.applies(src, dst, now) {
            lat += f.extra_latency;
            bw *= f.bandwidth_factor;
        }
    }
    (lat, bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_expected_traffic() {
        assert!(LinkScope::Pair { src: 1, dst: 2 }.matches(1, 2));
        assert!(!LinkScope::Pair { src: 1, dst: 2 }.matches(2, 1));
        assert!(LinkScope::From(3).matches(3, 9));
        assert!(!LinkScope::From(3).matches(9, 3));
        assert!(LinkScope::To(3).matches(9, 3));
        assert!(LinkScope::All.matches(7, 8));
    }

    #[test]
    fn onset_gates_activation() {
        let f = LinkFault::latency(LinkScope::All, 1e-3).starting_at(5.0);
        assert!(!f.applies(0, 1, 4.9));
        assert!(f.applies(0, 1, 5.0));
    }

    #[test]
    fn effects_accumulate() {
        let faults = [
            LinkFault::latency(LinkScope::From(0), 2e-6),
            LinkFault::bandwidth_collapse(LinkScope::All, 4.0),
            LinkFault::latency(LinkScope::Pair { src: 9, dst: 9 }, 1.0),
        ];
        let (lat, bw) = fault_effect(&faults, 0, 5, 0.0);
        assert!((lat - 2e-6).abs() < 1e-18);
        assert_eq!(bw, 4.0);
        let (lat, bw) = fault_effect(&faults, 5, 0, 0.0);
        assert_eq!(lat, 0.0);
        assert_eq!(bw, 4.0);
    }
}
