//! # mxp-msgsim — an MPI-like runtime with simulated time
//!
//! Stands in for Spectrum MPI (Summit) and Cray MPICH (Frontier). Ranks
//! exchange **real messages** over one of two interchangeable hosts —
//! OS threads ([`WorldSpec::run`]) or fiber continuations under a
//! discrete-event scheduler ([`WorldSpec::run_event`], which hosts full
//! Summit/Frontier rank counts in one process) — while every rank carries
//! a **simulated clock** advanced by a LogGP-style cost model fed from
//! `mxp-netsim`:
//!
//! * `send` charges the sender an overhead plus per-byte injection time and
//!   stamps the message with its arrival time (`sender clock + latency`);
//! * `recv` advances the receiver to `max(own clock, arrival)` — the
//!   difference is the *communication wait* the paper plots in Fig. 10;
//! * `charge` accounts local computation (e.g. a GPU kernel time from
//!   `mxp-gpusim`).
//!
//! Because arrival times are pure functions of sender state, the simulated
//! clocks are **deterministic** regardless of host scheduling — the thread
//! and event hosts produce bit-identical clocks and solutions — and
//! communication/computation overlap (the paper's look-ahead, §IV-B)
//! *emerges*: a receiver that computes before it receives simply finds the
//! panel already arrived.
//!
//! The same driver code therefore runs in two fidelities: **functional**
//! (payloads carry live matrix panels; small N) and **timing** (payloads are
//! `()`-like markers with declared byte counts; Summit/Frontier scale).
//!
//! ```
//! use mxp_msgsim::{BcastAlgo, Group, WorldSpec};
//! use mxp_netsim::frontier_network;
//!
//! // Four ranks broadcast a payload with the Ring2M algorithm while
//! // simulated clocks track the cost.
//! let world = WorldSpec::cluster(2, 2, frontier_network());
//! let results = world.run::<Vec<u8>, _, _>(|mut comm| {
//!     let mut group = Group::new(comm.rank(), (0..4).collect(), 1).unwrap();
//!     let msg = (comm.rank() == 0).then(|| vec![7u8; 16]);
//!     let got = group.bcast(&mut comm, 0, msg, 1 << 20, BcastAlgo::Ring2M);
//!     (got, comm.now())
//! });
//! assert!(results.iter().all(|(v, t)| v == &vec![7u8; 16] && *t > 0.0));
//! ```
//!
//! [`collectives`] implements the paper's §IV-B communicator choices —
//! library broadcast (binomial and pipelined), non-blocking broadcast with
//! per-vendor progress semantics, and the Ring1 / Ring1M / Ring2M
//! point-to-point rings — plus reductions and barriers built from the same
//! primitives.

#![deny(missing_docs)]

pub mod collectives;
mod event;
pub mod fault;
pub mod fiber;
mod group;
mod hash;
pub mod request;
mod world;

pub use collectives::{BcastAlgo, BcastInfo, BcastRequest, CollectiveTuning, PendingBcast};
pub use event::{last_event_stats, EventStats};
pub use fault::{LinkFault, LinkScope};
pub use group::Group;
pub use request::{RecvRequest, SendRequest};
pub use world::{Comm, RecvInfo, WorldSpec};
