//! Non-blocking point-to-point requests (`MPI_Isend`/`MPI_Irecv` analogues).
//!
//! A request is a lightweight handle recording *when* the operation was
//! posted; completion is charged against the simulated clock by the
//! matching `wait`/`test` call on [`crate::Comm`]:
//!
//! * an [`SendRequest`] completes locally when the NIC finishes serializing
//!   the message (`Comm` tracks a NIC-free timestamp so back-to-back
//!   `isend`s queue on the injection port instead of magically
//!   parallelizing);
//! * a [`RecvRequest`] completes at `max(post_time, arrival_time)` — the
//!   receiver only idles for the part of the transfer it did not cover
//!   with local work, which is how communication/computation overlap is
//!   charged *honestly*: time between post and wait spent computing counts
//!   against the transfer, and the saved idle time is reported as
//!   `hidden` in [`crate::RecvInfo`].
//!
//! `test` never advances the clock and is **advisory**: it answers "has
//! this completed by my current simulated time?" from the messages that
//! have physically arrived on the channel so far. Control flow that
//! branches on `test` results is therefore only deterministic once the
//! matching message is guaranteed in flight (e.g. after a barrier);
//! `wait`-driven completion is deterministic unconditionally.

/// Handle for a posted non-blocking send. Completion is local: the NIC has
/// finished serializing the payload (the LogGP `G·k` term); delivery is
/// *not* implied, exactly like `MPI_Isend` completion.
#[derive(Clone, Copy, Debug)]
pub struct SendRequest {
    /// Simulated time the send was posted.
    pub(crate) posted_at: f64,
    /// Simulated time the NIC finishes injecting the message.
    pub(crate) complete_at: f64,
}

impl SendRequest {
    /// Simulated time the send was posted.
    pub fn posted_at(&self) -> f64 {
        self.posted_at
    }

    /// Simulated time the injection completes (local completion).
    pub fn completes_at(&self) -> f64 {
        self.complete_at
    }
}

/// Handle for a posted non-blocking receive for `(src, tag)`. Matching
/// follows MPI's non-overtaking rule: the `i`-th receive posted for a
/// `(src, tag)` stream pairs with the `i`-th message sent on it, no matter
/// what order the waits later run in. (Matching the earliest *buffered*
/// message instead — the scheme this replaced — silently broke per-stream
/// FIFO completion clocks whenever requests were waited out of order.)
#[derive(Clone, Copy, Debug)]
pub struct RecvRequest {
    /// Source rank to match.
    pub(crate) src: usize,
    /// Tag to match.
    pub(crate) tag: u32,
    /// Position in the `(src, tag)` stream this request pairs with.
    pub(crate) seq: u64,
    /// Simulated time the receive was posted.
    pub(crate) posted_at: f64,
}

impl RecvRequest {
    /// Source rank this request matches.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Tag this request matches.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Position in the `(src, tag)` message stream this request pairs
    /// with (0-based post order).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Simulated time the receive was posted.
    pub fn posted_at(&self) -> f64 {
        self.posted_at
    }
}
