//! Stackful coroutines ("fibers") for the event-driven backend.
//!
//! The event backend runs every simulated rank as a suspended computation
//! on its own small heap-allocated stack, all multiplexed onto the one OS
//! thread that drives the discrete-event scheduler. A fiber costs a stack
//! allocation (lazily committed by the OS page by page) instead of an OS
//! thread, which is what lets a single process hold the 75,264 ranks of a
//! full Frontier run.
//!
//! The context switch is the classic callee-saved-register swap: push
//! `rbp/rbx/r12..r15`, save `rsp` into the suspended context, load the
//! resumed context's `rsp`, pop, `ret`. Floating-point state needs no
//! saving — the x86-64 SysV ABI makes every vector register caller-saved,
//! and neither side changes `mxcsr`/x87 control modes. On targets other
//! than x86-64 the module compiles to a stub and
//! [`supported`] reports `false`; the event backend then falls back to the
//! thread backend (same clocks, thread-bound scale).
//!
//! Scheduling is strictly cooperative and single-threaded: the scheduler
//! [`resume`](Fiber::resume)s a fiber, which runs until it calls
//! [`fiber_yield`] (or finishes), at which point control returns to the
//! scheduler. Panics inside a fiber are caught at the fiber boundary and
//! re-thrown by `resume`'s caller, mirroring how the thread backend
//! propagates a rank panic through `join`.

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::any::Any;
    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// `true` when this target has a fiber implementation.
    pub fn supported() -> bool {
        true
    }

    /// Recycled fiber stacks. A full-Frontier run churns ~75k × 256 KiB
    /// reservations; reusing the backing `Vec`s keeps the pages the OS
    /// already committed (and their page-table entries) live across ranks
    /// and across runs, instead of re-faulting every stack from zero.
    static STACK_POOL: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());
    static STACKS_REUSED: AtomicU64 = AtomicU64::new(0);
    static STACKS_ALLOCATED: AtomicU64 = AtomicU64::new(0);

    /// Pops a pooled stack of at least `size` bytes, or allocates one.
    /// Undersized pool entries (from smaller earlier runs) are dropped
    /// rather than resized — mixing sizes is rare and resize would copy.
    fn take_stack(size: usize) -> Vec<u8> {
        let mut pool = STACK_POOL.lock().unwrap();
        while let Some(stack) = pool.pop() {
            if stack.capacity() >= size {
                drop(pool);
                STACKS_REUSED.fetch_add(1, Ordering::Relaxed);
                return stack;
            }
        }
        drop(pool);
        STACKS_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(size)
    }

    /// Lifetime counters of the stack pool: `(reused, freshly allocated)`.
    pub fn stack_pool_stats() -> (u64, u64) {
        (
            STACKS_REUSED.load(Ordering::Relaxed),
            STACKS_ALLOCATED.load(Ordering::Relaxed),
        )
    }

    /// Releases every pooled stack back to the allocator. Long-lived
    /// processes that are done simulating (or switching to a much smaller
    /// extent) can call this to return the committed pages.
    pub fn trim_stack_pool() {
        STACK_POOL.lock().unwrap().clear();
    }

    /// Measured cost of one suspend/resume round trip (two context
    /// switches), in seconds — calibrated once per process by timing a
    /// yield loop. Used to attribute scheduler overhead in per-phase
    /// breakdowns without timestamping every switch.
    pub fn switch_cost_estimate() -> f64 {
        static COST: OnceLock<f64> = OnceLock::new();
        *COST.get_or_init(|| {
            const ROUNDS: u32 = 4096;
            let mut f = unsafe {
                Fiber::new(64 << 10, || {
                    for _ in 0..ROUNDS {
                        fiber_yield();
                    }
                })
            };
            let start = std::time::Instant::now();
            loop {
                if let Resume::Finished = f.resume() {
                    break;
                }
            }
            f.recycle();
            start.elapsed().as_secs_f64() / ROUNDS as f64
        })
    }

    // Saves the callee-saved context on the current stack, stores `rsp`
    // into `*save`, installs `rsp` from `*restore`, and returns into the
    // restored context. The first switch into a fresh fiber "returns" into
    // `fiber_entry` via the return address planted by `Fiber::new`.
    std::arch::global_asm!(
        ".balign 16",
        "mxp_msgsim_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    );

    extern "C" {
        fn mxp_msgsim_fiber_switch(save: *mut usize, restore: *const usize);
    }

    thread_local! {
        /// Slot holding the scheduler's saved stack pointer for the
        /// duration of one `resume` (points at a local in `resume`).
        static SCHED_SP: Cell<*mut usize> = const { Cell::new(std::ptr::null_mut()) };
        /// Slot of the currently running fiber's saved stack pointer.
        static CURRENT_SP: Cell<*mut usize> = const { Cell::new(std::ptr::null_mut()) };
        /// Closure handed to a fiber on its first resume.
        static START: Cell<*mut ()> = const { Cell::new(std::ptr::null_mut()) };
        /// Set by the fiber epilogue when the closure returned or panicked.
        static DONE: Cell<bool> = const { Cell::new(false) };
        /// Panic payload carried across the switch back to the scheduler.
        static PANIC: Cell<Option<Box<dyn Any + Send>>> = const { Cell::new(None) };
    }

    /// Value written at the low end of every stack; checked after each
    /// resume to catch fiber stack overflow before it silently corrupts
    /// neighbouring allocations.
    const CANARY: usize = 0x5AFE_57AC_CAFE_F1BE;

    /// Outcome of one [`Fiber::resume`].
    pub enum Resume {
        /// The fiber called [`fiber_yield`] and can be resumed again.
        Yielded,
        /// The fiber's closure returned; the fiber must not be resumed.
        Finished,
        /// The fiber's closure panicked; the payload is returned for
        /// `resume_unwind`. The fiber must not be resumed.
        Panicked(Box<dyn Any + Send>),
    }

    /// A suspended computation with its own stack.
    pub struct Fiber {
        /// Backing store; allocated but deliberately never initialized so
        /// the OS only commits the pages a rank actually touches.
        stack: Vec<u8>,
        /// Saved stack pointer while suspended.
        sp: usize,
        /// Entry closure, consumed on first resume.
        start: Option<Box<Box<dyn FnOnce()>>>,
        finished: bool,
    }

    impl Fiber {
        /// Creates a suspended fiber that will run `f` on a `stack_size`-
        /// byte stack when first resumed.
        ///
        /// # Safety
        ///
        /// The closure may borrow state with a lifetime shorter than
        /// `'static`; the caller must guarantee the fiber is driven to
        /// completion (or leaked-on-panic without further resumes) before
        /// any borrowed state is dropped — the scoped event-loop in
        /// `event.rs` upholds this by construction.
        pub unsafe fn new<F: FnOnce()>(stack_size: usize, f: F) -> Fiber {
            let mut stack: Vec<u8> = take_stack(stack_size.max(4096));
            let base = stack.as_mut_ptr() as usize;
            let top = base + stack.capacity();
            // 16-align the top, then plant (downward): a null return
            // address terminating unwinds, the entry trampoline as the
            // `ret` target of the first switch, and six zeroed
            // callee-saved-register slots.
            let top16 = top & !15usize;
            let p = top16 as *mut usize;
            unsafe {
                *(base as *mut usize) = CANARY;
                *p.sub(1) = 0;
                *p.sub(2) = fiber_entry as *const () as usize;
                for i in 3..=8 {
                    *p.sub(i) = 0;
                }
            }
            let boxed: Box<dyn FnOnce() + '_> = Box::new(f);
            // Erase the lifetime; see the safety contract above.
            let boxed: Box<dyn FnOnce() + 'static> =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + '_>, Box<dyn FnOnce()>>(boxed) };
            Fiber {
                stack,
                sp: top16 - 64,
                start: Some(Box::new(boxed)),
                finished: false,
            }
        }

        /// Switches to the fiber until it yields, finishes, or panics.
        pub fn resume(&mut self) -> Resume {
            assert!(!self.finished, "resume of a finished fiber");
            if let Some(start) = self.start.take() {
                START.with(|s| s.set(Box::into_raw(start) as *mut ()));
            }
            let mut sched_sp: usize = 0;
            let prev_sched = SCHED_SP.with(|s| s.replace(&mut sched_sp));
            let prev_current = CURRENT_SP.with(|c| c.replace(&mut self.sp));
            unsafe {
                mxp_msgsim_fiber_switch(&mut sched_sp, &self.sp);
            }
            SCHED_SP.with(|s| s.set(prev_sched));
            CURRENT_SP.with(|c| c.set(prev_current));
            let canary = unsafe { *(self.stack.as_ptr() as *const usize) };
            assert!(
                canary == CANARY,
                "fiber stack overflow: canary clobbered ({canary:#x})"
            );
            if DONE.with(|d| d.replace(false)) {
                self.finished = true;
                match PANIC.with(|p| p.take()) {
                    Some(payload) => Resume::Panicked(payload),
                    None => Resume::Finished,
                }
            } else {
                Resume::Yielded
            }
        }

        /// `true` once the fiber's closure has returned or panicked.
        pub fn is_finished(&self) -> bool {
            self.finished
        }

        /// Bytes of stack the OS would need to commit if fully touched —
        /// capacity, for diagnostics only.
        pub fn stack_size(&self) -> usize {
            self.stack.capacity()
        }

        /// Returns this fiber's stack to the pool for reuse by a later
        /// fiber. Only meaningful for finished fibers: a suspended fiber's
        /// stack still holds its live frames, so recycling it would be a
        /// use-after-free — hence the assert.
        pub fn recycle(self) {
            assert!(self.finished, "recycle of a live fiber");
            STACK_POOL.lock().unwrap().push(self.stack);
        }
    }

    /// Suspends the currently running fiber and returns control to the
    /// scheduler that resumed it. Panics when called from outside a fiber.
    pub fn fiber_yield() {
        let cur = CURRENT_SP.with(|c| c.get());
        let sched = SCHED_SP.with(|s| s.get());
        assert!(
            !cur.is_null() && !sched.is_null(),
            "fiber_yield outside a fiber"
        );
        unsafe {
            mxp_msgsim_fiber_switch(cur, sched);
        }
    }

    /// `true` when the calling code is running on a fiber.
    pub fn on_fiber() -> bool {
        CURRENT_SP.with(|c| !c.get().is_null())
    }

    /// First-resume entry point: runs the closure, records the outcome,
    /// and switches back to the scheduler for good.
    extern "C" fn fiber_entry() -> ! {
        let raw = START.with(|s| s.replace(std::ptr::null_mut()));
        debug_assert!(!raw.is_null(), "fiber entered without a start closure");
        let f: Box<Box<dyn FnOnce()>> = unsafe { Box::from_raw(raw as *mut Box<dyn FnOnce()>) };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(*f)) {
            PANIC.with(|p| p.set(Some(payload)));
        }
        DONE.with(|d| d.set(true));
        let sched = SCHED_SP.with(|s| s.get());
        let mut dead: usize = 0;
        unsafe {
            mxp_msgsim_fiber_switch(&mut dead, sched);
        }
        unreachable!("finished fiber resumed");
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    //! Stub for targets without a context-switch implementation: the event
    //! backend detects `supported() == false` and routes through the
    //! thread backend instead, so none of these entry points can be hit.

    use std::any::Any;

    /// `true` when this target has a fiber implementation.
    pub fn supported() -> bool {
        false
    }

    /// Outcome of one [`Fiber::resume`].
    pub enum Resume {
        /// The fiber yielded.
        Yielded,
        /// The fiber finished.
        Finished,
        /// The fiber panicked.
        Panicked(Box<dyn Any + Send>),
    }

    /// Unsupported-target placeholder.
    pub struct Fiber;

    impl Fiber {
        /// Unavailable on this target.
        ///
        /// # Safety
        ///
        /// Never constructible; see the x86-64 implementation for the
        /// real contract.
        pub unsafe fn new<F: FnOnce()>(_stack_size: usize, _f: F) -> Fiber {
            unimplemented!("fibers are not implemented for this target")
        }

        /// Unavailable on this target.
        pub fn resume(&mut self) -> Resume {
            unimplemented!("fibers are not implemented for this target")
        }

        /// Unavailable on this target.
        pub fn is_finished(&self) -> bool {
            true
        }

        /// Unavailable on this target.
        pub fn stack_size(&self) -> usize {
            0
        }

        /// Unavailable on this target.
        pub fn recycle(self) {}
    }

    /// Unavailable on this target.
    pub fn fiber_yield() {
        unimplemented!("fibers are not implemented for this target")
    }

    /// Always `false` on this target.
    pub fn on_fiber() -> bool {
        false
    }

    /// Always `(0, 0)` on this target.
    pub fn stack_pool_stats() -> (u64, u64) {
        (0, 0)
    }

    /// No-op on this target.
    pub fn trim_stack_pool() {}

    /// Always `0.0` on this target.
    pub fn switch_cost_estimate() -> f64 {
        0.0
    }
}

pub use imp::{
    fiber_yield, on_fiber, stack_pool_stats, supported, switch_cost_estimate, trim_stack_pool,
    Fiber, Resume,
};

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    const STACK: usize = 64 * 1024;

    #[test]
    fn runs_to_completion() {
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        let mut f = unsafe { Fiber::new(STACK, move || h.borrow_mut().push(42)) };
        assert!(matches!(f.resume(), Resume::Finished));
        assert!(f.is_finished());
        assert_eq!(*hits.borrow(), vec![42]);
    }

    #[test]
    fn yields_and_resumes_interleaved() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut fibers: Vec<Fiber> = (0..3)
            .map(|id| {
                let log = log.clone();
                unsafe {
                    Fiber::new(STACK, move || {
                        for step in 0..2 {
                            log.borrow_mut().push((id, step));
                            fiber_yield();
                        }
                    })
                }
            })
            .collect();
        // Round-robin until all finish: yields interleave the logs.
        let mut live = 3;
        while live > 0 {
            for f in &mut fibers {
                if !f.is_finished() {
                    if let Resume::Finished = f.resume() {
                        live -= 1;
                    }
                }
            }
        }
        assert_eq!(
            *log.borrow(),
            vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]
        );
    }

    #[test]
    fn panic_is_captured_and_rethrowable() {
        let mut f = unsafe { Fiber::new(STACK, || panic!("rank died")) };
        match f.resume() {
            Resume::Panicked(payload) => {
                let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "rank died");
            }
            _ => panic!("expected a captured panic"),
        }
        assert!(f.is_finished());
    }

    #[test]
    fn many_fibers_fit_in_memory() {
        // 10k fibers — sanity for the 75k-rank target without slowing the
        // debug test run. Untouched stack pages stay uncommitted.
        let counter = Rc::new(RefCell::new(0usize));
        let mut fibers: Vec<Fiber> = (0..10_000)
            .map(|_| {
                let c = counter.clone();
                unsafe {
                    Fiber::new(STACK, move || {
                        fiber_yield();
                        *c.borrow_mut() += 1;
                    })
                }
            })
            .collect();
        for f in &mut fibers {
            assert!(matches!(f.resume(), Resume::Yielded));
        }
        for f in &mut fibers {
            assert!(matches!(f.resume(), Resume::Finished));
        }
        assert_eq!(*counter.borrow(), 10_000);
    }

    #[test]
    fn recycled_stacks_are_reused() {
        let (reused_before, _) = stack_pool_stats();
        // Several create/finish/recycle cycles: even if concurrently
        // running tests pop the pool in between, at least one cycle
        // reuses a stack this test just returned.
        for _ in 0..50 {
            let mut f = unsafe { Fiber::new(STACK, || {}) };
            assert!(matches!(f.resume(), Resume::Finished));
            f.recycle();
        }
        let (reused_after, _) = stack_pool_stats();
        assert!(
            reused_after > reused_before,
            "no stack reuse across {reused_before}→{reused_after}"
        );
    }

    #[test]
    fn switch_cost_is_sane() {
        let cost = switch_cost_estimate();
        // A context switch round trip is more than a nanosecond and less
        // than a millisecond on anything that can run this suite.
        assert!(cost > 1e-9 && cost < 1e-3, "switch cost {cost}");
    }

    #[test]
    fn on_fiber_reports_context() {
        assert!(!on_fiber());
        let seen = Rc::new(RefCell::new(false));
        let s = seen.clone();
        let mut f = unsafe { Fiber::new(STACK, move || *s.borrow_mut() = on_fiber()) };
        f.resume();
        assert!(*seen.borrow());
        assert!(!on_fiber());
    }
}
