//! A fast, non-cryptographic hasher for the simulator's hot-path maps.
//!
//! The per-(src, tag) sequence maps and the event backend's pending-message
//! index are hit on every message; `std`'s SipHash dominates those lookups
//! at full-machine rank counts. This is the classic Fx multiply-rotate mix
//! (as used by rustc): good dispersion for small integer keys, a handful of
//! instructions per word, and no per-map random state — determinism is a
//! feature here, since nothing ever iterates these maps.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (64-bit golden-ratio derivative).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher for small integer keys.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for keys that hash as raw bytes: fold word-sized chunks.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast hasher.
pub(crate) type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_stream_keys_disperse() {
        // The hot key shape: (rank, tag) pairs. All distinct inputs must
        // produce distinct hashes over a realistic range (no catastrophic
        // collapse like xor-folding symmetric pairs).
        use std::collections::HashSet;
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let mut seen = HashSet::new();
        for src in 0..64usize {
            for tag in [0u32, 1, 7, 0x8000_0001, 0x8001_0003] {
                seen.insert(bh.hash_one((src, tag)));
            }
        }
        assert_eq!(seen.len(), 64 * 5, "collisions in the (src, tag) key space");
    }

    #[test]
    fn maps_behave_like_std() {
        let mut m: FxHashMap<(usize, u32), u64> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert((i, (i * 3) as u32), i as u64);
        }
        for i in 0..1000usize {
            assert_eq!(m.get(&(i, (i * 3) as u32)), Some(&(i as u64)));
        }
        assert_eq!(m.len(), 1000);
    }
}
