//! Edge-case tests for the group collectives: single-member groups,
//! non-power-of-two ring sizes, and zero-byte payloads must work for every
//! broadcast algorithm, through both the blocking and split-phase entry
//! points.

use mxp_msgsim::{BcastAlgo, CollectiveTuning, Group, WorldSpec};
use mxp_netsim::{frontier_network, summit_network};

fn world(p: usize, q: usize, summit: bool) -> WorldSpec {
    let nodes = p.div_ceil(q);
    let mut w = WorldSpec::cluster(
        nodes,
        q,
        if summit {
            summit_network()
        } else {
            frontier_network()
        },
    );
    w.locs.truncate(p);
    w.tuning = if summit {
        CollectiveTuning::summit()
    } else {
        CollectiveTuning::frontier()
    };
    w
}

fn bcast_all(p: usize, root: usize, bytes: u64, algo: BcastAlgo, summit: bool) -> Vec<u64> {
    let w = world(p, 1.min(p), summit);
    w.run::<u64, _, _>(move |mut c| {
        let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
        let msg = if g.my_idx() == root { Some(42) } else { None };
        g.bcast(&mut c, root, msg, bytes, algo)
    })
}

fn ibcast_all(p: usize, root: usize, bytes: u64, algo: BcastAlgo, summit: bool) -> Vec<u64> {
    let w = world(p, 1.min(p), summit);
    w.run::<u64, _, _>(move |mut c| {
        let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
        let msg = if g.my_idx() == root { Some(42) } else { None };
        let req = g.ibcast(&mut c, root, msg, bytes, algo);
        let (m, info) = g.ibcast_join(&mut c, req);
        assert!(info.waited >= 0.0 && info.hidden >= 0.0);
        m
    })
}

#[test]
fn single_member_group_every_algo() {
    for algo in BcastAlgo::ALL {
        for summit in [false, true] {
            let got = bcast_all(1, 0, 4096, algo, summit);
            assert_eq!(got, vec![42], "{algo:?} summit={summit}");
            let got = ibcast_all(1, 0, 4096, algo, summit);
            assert_eq!(got, vec![42], "{algo:?} summit={summit} split-phase");
        }
    }
}

#[test]
fn non_power_of_two_rings_every_algo() {
    // Odd and prime group sizes stress the mid-split of the modified
    // rings (Ring1M chains, Ring2M meet-in-the-middle).
    for p in [3usize, 5, 6, 7] {
        for algo in BcastAlgo::ALL {
            for root in [0, p - 1, p / 2] {
                let got = bcast_all(p, root, 1 << 20, algo, false);
                assert_eq!(got, vec![42; p], "{algo:?} p={p} root={root}");
            }
        }
    }
}

#[test]
fn zero_byte_payload_every_algo() {
    for p in [1usize, 2, 3, 5, 8] {
        for algo in BcastAlgo::ALL {
            let got = bcast_all(p, 0, 0, algo, false);
            assert_eq!(got, vec![42; p], "{algo:?} p={p} blocking zero-byte");
            let got = ibcast_all(p, 0, 0, algo, false);
            assert_eq!(got, vec![42; p], "{algo:?} p={p} split-phase zero-byte");
        }
    }
}

#[test]
fn split_phase_matches_blocking_delivery() {
    for p in [2usize, 4, 5, 7] {
        for algo in BcastAlgo::ALL {
            for summit in [false, true] {
                let a = bcast_all(p, 1 % p, 1 << 18, algo, summit);
                let b = ibcast_all(p, 1 % p, 1 << 18, algo, summit);
                assert_eq!(a, b, "{algo:?} p={p} summit={summit}");
            }
        }
    }
}

#[test]
fn zero_byte_collectives_are_cheap() {
    // A zero-byte broadcast still pays latency and overheads but must not
    // charge any bandwidth term: it completes well under a millisecond of
    // simulated time at any swept size.
    for p in [2usize, 5, 8] {
        for algo in BcastAlgo::ALL {
            let w = world(p, 2, false);
            let clocks = w.run::<u64, _, _>(move |mut c| {
                let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
                let msg = if g.my_idx() == 0 { Some(0) } else { None };
                g.bcast(&mut c, 0, msg, 0, algo);
                c.now().to_bits()
            });
            for bits in clocks {
                let t = f64::from_bits(bits);
                assert!(t < 1e-3, "{algo:?} p={p}: zero-byte bcast took {t}");
            }
        }
    }
}

#[test]
fn deferred_ibcast_root_without_async_progress_still_delivers() {
    // Summit tuning has no async progress: the root's injection is
    // deferred to the join. Everyone must still get the payload, and the
    // root must report zero hidden (it did the work at join, not in
    // flight).
    for p in [2usize, 3, 6] {
        let w = world(p, 2, true);
        let got = w.run::<u64, _, _>(move |mut c| {
            let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
            let msg = if g.my_idx() == 0 { Some(7) } else { None };
            let req = g.ibcast(&mut c, 0, msg, 1 << 16, BcastAlgo::IBcast);
            let (m, info) = g.ibcast_join(&mut c, req);
            if g.my_idx() == 0 {
                assert_eq!(info.hidden, 0.0, "root must not claim hidden overlap");
            }
            m
        });
        assert_eq!(got, vec![7; p]);
    }
}
