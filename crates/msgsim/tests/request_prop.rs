//! Property-based tests of the non-blocking request layer: arbitrary
//! isend/irecv interleavings must preserve per-(src, tag) FIFO order, and
//! same-seed schedules must produce byte-identical completion logs.

use mxp_msgsim::{Comm, RecvRequest, WorldSpec};
use mxp_netsim::frontier_network;
use proptest::prelude::*;

fn world(p: usize, q: usize) -> WorldSpec {
    let nodes = p.div_ceil(q);
    let mut w = WorldSpec::cluster(nodes, q, frontier_network());
    w.locs.truncate(p);
    w
}

/// Deterministic splitmix64 shuffle — the interleaving is a pure function
/// of the seed, so the same seed replays the same schedule.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

const TAGS: [u32; 2] = [11, 22];

/// One rank's completion log: (src, tag, sequence number, arrival clock
/// bits). Clock bits rather than floats so equality is exact.
type Log = Vec<(usize, u32, u64, u64)>;

/// Every rank isends `k` sequence-stamped messages per tag to every other
/// rank, posts all matching irecvs, and drains them in a seed-shuffled
/// interleaving across (src, tag) streams.
fn exchange(mut c: Comm<u64>, p: usize, k: usize, seed: u64) -> Log {
    let me = c.rank();
    let mut sends = Vec::new();
    for dst in 0..p {
        if dst == me {
            continue;
        }
        for (t, &tag) in TAGS.iter().enumerate() {
            for s in 0..k {
                let payload = (me as u64) << 32 | (t as u64) << 16 | s as u64;
                // Varying sizes exercise NIC serialization queueing.
                sends.push(c.isend(dst, tag, payload, 512 * (s as u64 + 1)));
            }
        }
    }
    // Post receives grouped per (src, tag) stream, then wait on the
    // streams in a shuffled round-robin.
    let mut streams: Vec<(usize, u32, Vec<RecvRequest>)> = Vec::new();
    for src in 0..p {
        if src == me {
            continue;
        }
        for &tag in &TAGS {
            let reqs = (0..k).map(|_| c.irecv(src, tag)).collect();
            streams.push((src, tag, reqs));
        }
    }
    shuffle(&mut streams, seed ^ me as u64);
    let mut log = Log::new();
    let mut cursor = vec![0usize; streams.len()];
    for round in 0..k {
        for (i, (src, tag, reqs)) in streams.iter().enumerate() {
            debug_assert_eq!(cursor[i], round);
            let (msg, _info) = c.wait_recv(reqs[cursor[i]]);
            cursor[i] += 1;
            log.push((*src, *tag, msg & 0xFFFF, c.now().to_bits()));
        }
    }
    c.waitall_send(sends);
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every (src, tag) stream, messages complete in send order: the
    /// i-th wait returns sequence number i, whatever the interleaving.
    #[test]
    fn interleavings_preserve_per_src_tag_fifo(
        p in 2usize..9,
        k in 1usize..5,
        q in 1usize..4,
        seed: u64,
    ) {
        let w = world(p, q);
        let logs = w.run::<u64, _, _>(move |c| exchange(c, p, k, seed));
        for (rank, log) in logs.iter().enumerate() {
            let mut next_seq = std::collections::HashMap::new();
            for &(src, tag, seq, _) in log {
                let want = next_seq.entry((src, tag)).or_insert(0u64);
                prop_assert_eq!(
                    seq, *want,
                    "rank {} src {} tag {}: got seq {} want {}",
                    rank, src, tag, seq, *want
                );
                *want += 1;
            }
            // Every stream fully drained.
            for (&(src, tag), &n) in &next_seq {
                prop_assert_eq!(n, k as u64, "rank {} stream ({}, {})", rank, src, tag);
            }
        }
    }

    /// The completion log — payloads, order, and exact clock bits — is a
    /// pure function of the seed: two runs are byte-identical.
    #[test]
    fn same_seed_gives_byte_identical_completion_logs(
        p in 2usize..7,
        k in 1usize..4,
        seed: u64,
    ) {
        let w = world(p, 2);
        let a = w.run::<u64, _, _>(move |c| exchange(c, p, k, seed));
        let b = w.run::<u64, _, _>(move |c| exchange(c, p, k, seed));
        let bytes_of = |logs: &[Log]| format!("{logs:?}").into_bytes();
        prop_assert_eq!(bytes_of(&a), bytes_of(&b));
    }

    /// Different interleavings never change *what* arrives — only when the
    /// waits charge it. The multiset of (src, tag, seq) per rank is
    /// schedule-invariant.
    #[test]
    fn payload_set_is_interleaving_invariant(
        p in 2usize..7,
        k in 1usize..4,
        seed_a: u64,
        seed_b: u64,
    ) {
        let w = world(p, 2);
        let a = w.run::<u64, _, _>(move |c| exchange(c, p, k, seed_a));
        let b = w.run::<u64, _, _>(move |c| exchange(c, p, k, seed_b));
        for (la, lb) in a.iter().zip(&b) {
            let strip = |l: &Log| {
                let mut v: Vec<_> = l.iter().map(|&(s, t, q, _)| (s, t, q)).collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(strip(la), strip(lb));
        }
    }
}
