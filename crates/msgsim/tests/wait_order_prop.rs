//! Property tests for the posted-receive matching discipline, run on BOTH
//! backends: waits executed in an arbitrary permutation of post order must
//! still pair the i-th posted receive with the i-th sent message of its
//! (src, tag) stream, keep per-stream completion clocks FIFO, and leave
//! the simulated timeline bit-identical between the thread and event
//! backends.
//!
//! This pins the fix for a latent bug: matching used to take the earliest
//! *buffered* message for (src, tag), so waiting requests out of order
//! handed a later request an earlier message — completion times per
//! stream were no longer monotone in post order and depended on the wait
//! schedule.

use mxp_msgsim::{Comm, WorldSpec};
use mxp_netsim::frontier_network;
use proptest::prelude::*;

/// One receive's outcome: (post index, payload, arrival bits, clock bits
/// after the wait).
type Log = Vec<(usize, u64, u64, u64)>;

/// Deterministic permutation of `0..n` from a seed (splitmix64 shuffle).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut next = || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Rank 0 sends `k` stamped messages on one (src, tag) stream with local
/// work in between; rank 1 posts all receives up front, then waits them
/// in `perm` order, logging what each *post index* received.
fn out_of_order_job(mut c: Comm<u64>, k: usize, perm: &[usize]) -> Log {
    if c.rank() == 0 {
        for i in 0..k as u64 {
            c.charge(1e-3);
            c.send(1, 5, i, 4096 * (i + 1));
        }
        Vec::new()
    } else {
        let reqs: Vec<_> = (0..k).map(|_| c.irecv(0, 5)).collect();
        let mut log = vec![(0usize, 0u64, 0u64, 0u64); k];
        for &i in perm {
            let (msg, info) = c.wait_recv(reqs[i]);
            log[i] = (i, msg, info.arrived_at.to_bits(), c.now().to_bits());
        }
        log
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIFO holds on both backends under any wait permutation: post i
    /// receives message i, and arrival clocks are monotone in post order.
    #[test]
    fn out_of_order_waits_keep_fifo_clocks(k in 1usize..8, seed: u64) {
        let w = WorldSpec::cluster(2, 1, frontier_network());
        let perm = permutation(k, seed);
        let run_on = |event: bool| {
            let perm = perm.clone();
            let job = move |c: Comm<u64>| out_of_order_job(c, k, &perm);
            if event { w.run_event(job) } else { w.run(job) }
        };
        for (name, logs) in [("thread", run_on(false)), ("event", run_on(true))] {
            let log = &logs[1];
            for &(i, msg, _, _) in log {
                prop_assert_eq!(
                    msg, i as u64,
                    "{} backend: post {} got message {}", name, i, msg
                );
            }
            for pair in log.windows(2) {
                let (a, b) = (f64::from_bits(pair[0].2), f64::from_bits(pair[1].2));
                prop_assert!(
                    a <= b,
                    "{} backend: arrivals regressed {} -> {}", name, a, b
                );
            }
        }
    }

    /// The two backends agree bit-for-bit: payload pairing, arrival
    /// clocks, and post-wait clocks are identical however the waits are
    /// permuted.
    #[test]
    fn backends_agree_bitwise_under_permuted_waits(k in 1usize..8, seed: u64) {
        let w = WorldSpec::cluster(2, 1, frontier_network());
        let perm = permutation(k, seed);
        let job = {
            let perm = perm.clone();
            move |c: Comm<u64>| out_of_order_job(c, k, &perm)
        };
        let threads = w.run(job);
        let job = move |c: Comm<u64>| out_of_order_job(c, k, &perm);
        let events = w.run_event(job);
        prop_assert_eq!(threads, events);
    }

    /// The wait permutation is *invisible* to the simulated timeline: the
    /// final clock and the (post index -> payload, arrival) pairing match
    /// the fully in-order schedule.
    #[test]
    fn wait_order_never_changes_the_timeline(k in 1usize..8, seed: u64) {
        let w = WorldSpec::cluster(2, 1, frontier_network());
        let inorder: Vec<usize> = (0..k).collect();
        let perm = permutation(k, seed);
        let run_perm = |p: Vec<usize>| {
            w.run_event(move |c: Comm<u64>| out_of_order_job(c, k, &p))
        };
        let base = run_perm(inorder);
        let shuffled = run_perm(perm);
        // Pairing and arrivals identical; only the post-wait clock column
        // may differ (waits charge at different local times).
        let strip = |logs: &[Log]| -> Vec<Vec<(usize, u64, u64)>> {
            logs.iter()
                .map(|l| l.iter().map(|&(i, m, a, _)| (i, m, a)).collect())
                .collect()
        };
        prop_assert_eq!(strip(&base), strip(&shuffled));
    }
}
