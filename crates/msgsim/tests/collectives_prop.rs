//! Property-based tests of the message runtime's collectives: delivery
//! correctness and clock determinism across random group sizes, roots,
//! payload sizes, and algorithms.

use mxp_msgsim::{BcastAlgo, CollectiveTuning, Group, WorldSpec};
use mxp_netsim::{frontier_network, summit_network};
use proptest::prelude::*;

fn world(p: usize, q: usize, summit: bool) -> WorldSpec {
    let nodes = p.div_ceil(q);
    let mut w = WorldSpec::cluster(
        nodes,
        q,
        if summit {
            summit_network()
        } else {
            frontier_network()
        },
    );
    w.locs.truncate(p);
    w.tuning = if summit {
        CollectiveTuning::summit()
    } else {
        CollectiveTuning::frontier()
    };
    w
}

fn algo_of(i: u8) -> BcastAlgo {
    BcastAlgo::ALL[i as usize % BcastAlgo::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every algorithm delivers the root's payload to every member, for
    /// any group size, root, byte count, and vendor tuning.
    #[test]
    fn bcast_delivers(
        p in 2usize..10,
        q in 1usize..4,
        root_seed in 0usize..100,
        algo_i in 0u8..5,
        bytes in 0u64..(64 << 20),
        summit: bool,
    ) {
        let root = root_seed % p;
        let algo = algo_of(algo_i);
        let w = world(p, q, summit);
        let payload: Vec<u64> = (0..32).map(|i| root as u64 * 1000 + i).collect();
        let expect = payload.clone();
        let results = w.run::<Vec<u64>, _, _>(move |mut c| {
            let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
            let msg = if g.my_idx() == root { Some(payload.clone()) } else { None };
            g.bcast(&mut c, root, msg, bytes, algo)
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// Simulated clocks are a pure function of the schedule: two runs of
    /// the same program give identical clocks for every algorithm.
    #[test]
    fn clocks_deterministic(p in 2usize..9, algo_i in 0u8..5, bytes in 1u64..(16 << 20)) {
        let algo = algo_of(algo_i);
        let w = world(p, 2, false);
        let job = move |mut c: mxp_msgsim::Comm<()>| {
            let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
            for root in 0..p.min(3) {
                let msg = if g.my_idx() == root { Some(()) } else { None };
                g.bcast(&mut c, root, msg, bytes, algo);
            }
            c.now()
        };
        let a = w.run(job);
        let b = w.run(job);
        prop_assert_eq!(a, b);
    }

    /// gather ∘ scatter is the identity on the pieces.
    #[test]
    fn scatter_gather_roundtrip(p in 2usize..10, root_seed in 0usize..100) {
        let root = root_seed % p;
        let w = world(p, 1, false);
        let gathered = w.run::<u64, _, _>(move |mut c| {
            let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
            let pieces = if g.my_idx() == root {
                Some((0..p as u64).map(|i| i * i + 7).collect())
            } else {
                None
            };
            let mine = g.scatter(&mut c, root, pieces, 8);
            g.gather(&mut c, root, mine, 8)
        });
        let expect: Vec<u64> = (0..p as u64).map(|i| i * i + 7).collect();
        prop_assert_eq!(gathered[root].clone().unwrap(), expect);
        for (i, r) in gathered.iter().enumerate() {
            if i != root {
                prop_assert!(r.is_none());
            }
        }
    }

    /// reduce produces the same total as allreduce, at any root.
    #[test]
    fn reduce_matches_allreduce(p in 2usize..10, root_seed in 0usize..100) {
        let root = root_seed % p;
        let w = world(p, 1, false);
        let results = w.run::<u64, _, _>(move |mut c| {
            let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
            let mine = (c.rank() as u64 + 3) * 11;
            let red = g.reduce(&mut c, root, mine, 8, |a, b| a + b);
            let all = g.allreduce(&mut c, mine, 8, |a, b| a + b);
            (red, all)
        });
        let expect: u64 = (0..p as u64).map(|r| (r + 3) * 11).sum();
        for (i, (red, all)) in results.iter().enumerate() {
            prop_assert_eq!(*all, expect);
            if i == root {
                prop_assert_eq!(red.unwrap(), expect);
            } else {
                prop_assert!(red.is_none());
            }
        }
    }

    /// allgather gives every member the same full vector, in group order.
    #[test]
    fn allgather_complete(p in 2usize..9) {
        let w = world(p, 1, false);
        let results = w.run::<u64, _, _>(move |mut c| {
            let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
            let mine = c.rank() as u64 * 3 + 1;
            g.allgather(&mut c, mine, 8)
        });
        let expect: Vec<u64> = (0..p as u64).map(|r| r * 3 + 1).collect();
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// Larger payloads never arrive earlier (monotonicity of the cost
    /// model through the whole collective stack).
    #[test]
    fn bcast_time_monotone_in_bytes(p in 3usize..8, algo_i in 0u8..5) {
        let algo = algo_of(algo_i);
        let w = world(p, 2, false);
        let t_of = |bytes: u64| {
            let clocks = w.run::<(), _, _>(move |mut c| {
                let mut g = Group::new(c.rank(), (0..p).collect(), 1).unwrap();
                let msg = if g.my_idx() == 0 { Some(()) } else { None };
                g.bcast(&mut c, 0, msg, bytes, algo);
                c.now()
            });
            clocks.into_iter().fold(0.0, f64::max)
        };
        let small = t_of(1 << 16);
        let big = t_of(64 << 20);
        prop_assert!(big >= small, "{} < {}", big, small);
    }
}
