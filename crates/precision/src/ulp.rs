//! ULP (units in the last place) distance helpers.
//!
//! Accuracy assertions in the test suites are stated in ULPs rather than
//! absolute tolerances so they remain meaningful across the five orders of
//! magnitude the benchmark's values span.

/// ULP distance between two `f32` values.
///
/// Uses the standard monotone integer mapping (sign-magnitude → two's
/// complement), so adjacent floats are at distance 1 and `+0.0`/`-0.0` are at
/// distance 0. Returns `u32::MAX` if either input is NaN.
pub fn ulp_diff_f32(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    let ia = monotone_f32(a);
    let ib = monotone_f32(b);
    ia.abs_diff(ib) as u32
}

/// ULP distance between two `f64` values. Returns `u64::MAX` on NaN.
pub fn ulp_diff_f64(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let ia = monotone_f64(a);
    let ib = monotone_f64(b);
    ia.abs_diff(ib) as u64
}

/// ULP distance between two binary16 bit patterns.
pub fn ulp_diff_f16(a: crate::F16, b: crate::F16) -> u16 {
    if a.is_nan() || b.is_nan() {
        return u16::MAX;
    }
    let ia = monotone_f16(a.to_bits());
    let ib = monotone_f16(b.to_bits());
    ia.abs_diff(ib) as u16
}

#[inline]
fn monotone_f32(x: f32) -> i64 {
    let bits = x.to_bits() as i64;
    if bits & 0x8000_0000 != 0 {
        0x8000_0000 - bits
    } else {
        bits
    }
}

#[inline]
fn monotone_f64(x: f64) -> i128 {
    let bits = x.to_bits() as i128;
    if bits & 0x8000_0000_0000_0000 != 0 {
        0x8000_0000_0000_0000 - bits
    } else {
        bits
    }
}

#[inline]
fn monotone_f16(bits: u16) -> i32 {
    let b = bits as i32;
    if b & 0x8000 != 0 {
        0x8000 - b
    } else {
        b
    }
}

/// `true` if `a` and `b` are within `tol` ULPs of each other (f32).
pub fn approx_eq_ulps_f32(a: f32, b: f32, tol: u32) -> bool {
    ulp_diff_f32(a, b) <= tol
}

/// `true` if `a` and `b` are within `tol` ULPs of each other (f64).
pub fn approx_eq_ulps_f64(a: f64, b: f64, tol: u64) -> bool {
    ulp_diff_f64(a, b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::F16;

    #[test]
    fn zero_distance() {
        assert_eq!(ulp_diff_f32(1.0, 1.0), 0);
        assert_eq!(ulp_diff_f32(0.0, -0.0), 0);
        assert_eq!(ulp_diff_f64(0.0, -0.0), 0);
    }

    #[test]
    fn adjacent_floats() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_diff_f32(x, next), 1);
        let y = -1.0f32;
        let nexty = f32::from_bits(y.to_bits() + 1); // toward -0
        assert_eq!(ulp_diff_f32(y, nexty), 1);
    }

    #[test]
    fn across_zero() {
        let pos = f32::from_bits(1); // smallest positive subnormal
        let neg = -pos;
        assert_eq!(ulp_diff_f32(pos, neg), 2);
        assert_eq!(ulp_diff_f32(pos, 0.0), 1);
    }

    #[test]
    fn f64_adjacent() {
        let x = 3.5f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_diff_f64(x, next), 1);
        assert_eq!(ulp_diff_f64(x, x), 0);
    }

    #[test]
    fn f16_distance() {
        assert_eq!(ulp_diff_f16(F16::ONE, F16::ONE), 0);
        assert_eq!(
            ulp_diff_f16(F16::from_bits(0x3c00), F16::from_bits(0x3c01)),
            1
        );
        assert_eq!(
            ulp_diff_f16(F16::from_bits(0x0001), F16::from_bits(0x8001)),
            2
        );
    }

    #[test]
    fn nan_is_max() {
        assert_eq!(ulp_diff_f32(f32::NAN, 1.0), u32::MAX);
        assert_eq!(ulp_diff_f64(1.0, f64::NAN), u64::MAX);
        assert_eq!(ulp_diff_f16(F16::NAN, F16::ONE), u16::MAX);
    }

    #[test]
    fn approx_helpers() {
        assert!(approx_eq_ulps_f32(1.0, 1.0 + f32::EPSILON, 2));
        assert!(!approx_eq_ulps_f32(1.0, 1.1, 4));
        assert!(approx_eq_ulps_f64(1.0, 1.0 + f64::EPSILON, 2));
    }
}
