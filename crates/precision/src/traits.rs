//! Numeric traits the BLAS and solver layers are generic over.

use crate::{B16, F16};
use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A full-precision IEEE real type (`f32` or `f64`).
///
/// This is the "working precision" of a kernel: GETRF/TRSM run in `f32`,
/// iterative refinement in `f64`. Only the operations the solvers actually
/// need are included.
pub trait Real:
    Copy
    + Debug
    + Display
    + Default
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon (distance from 1.0 to the next value).
    const EPSILON: Self;

    /// Lossless-or-rounded conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening (or identity) conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `self * a + b`, fused when the platform provides FMA.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` if not NaN and not infinite.
    fn is_finite(self) -> bool;
    /// Larger of two values (NaN-propagating like `f64::max` is not needed;
    /// this is used on norms which are non-NaN by construction).
    fn max(self, other: Self) -> Self;
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
}

/// A storage format usable as the *input* side of a mixed-precision GEMM.
///
/// The paper's trailing-matrix update multiplies FP16 `L` and `U` panels into
/// an FP32 accumulator (`A ← A − L·U`). The GEMM kernel in `mxp-blas` is
/// generic over this trait so the identical code path runs:
///
/// * `F16` — the paper's configuration (tensor-core emulation),
/// * `B16` — the bfloat16 ablation,
/// * `f32` — the "no precision loss" control.
pub trait LowPrec: Copy + Debug + Default + Send + Sync + 'static {
    /// Round an `f32` into this storage format.
    fn from_f32(x: f32) -> Self;
    /// Widen back to `f32` (exact for all three implementors).
    fn to_f32(self) -> f32;
    /// Unit roundoff of the format, used by error-bound tests.
    fn unit_roundoff() -> f64;
    /// Short human-readable tag ("fp16", "bf16", "fp32") for reports.
    fn tag() -> &'static str;

    /// Bulk widen: `dst[i] = src[i].to_f32()`, SIMD-accelerated where the
    /// host allows (see [`crate::simd`]); bitwise identical to the scalar
    /// loop on every path. Panics if the lengths differ.
    fn widen_slice(src: &[Self], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "widen_slice: length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s.to_f32();
        }
    }

    /// Bulk narrow: `dst[i] = Self::from_f32(src[i])`, SIMD-accelerated
    /// where the host allows; bitwise identical to the scalar loop on every
    /// path. Panics if the lengths differ.
    fn narrow_slice(src: &[f32], dst: &mut [Self]) {
        assert_eq!(src.len(), dst.len(), "narrow_slice: length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = Self::from_f32(s);
        }
    }
}

impl LowPrec for F16 {
    #[inline]
    fn from_f32(x: f32) -> Self {
        F16::from_f32(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        F16::to_f32(self)
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        crate::F16_EPS
    }
    fn tag() -> &'static str {
        "fp16"
    }
    #[inline]
    fn widen_slice(src: &[Self], dst: &mut [f32]) {
        crate::simd::widen_f16_slice(src, dst);
    }
    #[inline]
    fn narrow_slice(src: &[f32], dst: &mut [Self]) {
        crate::simd::narrow_f16_slice(src, dst);
    }
}

impl LowPrec for B16 {
    #[inline]
    fn from_f32(x: f32) -> Self {
        B16::from_f32(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        B16::to_f32(self)
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        crate::B16_EPS
    }
    fn tag() -> &'static str {
        "bf16"
    }
    #[inline]
    fn widen_slice(src: &[Self], dst: &mut [f32]) {
        crate::simd::widen_b16_slice(src, dst);
    }
    #[inline]
    fn narrow_slice(src: &[f32], dst: &mut [Self]) {
        crate::simd::narrow_b16_slice(src, dst);
    }
}

impl LowPrec for f32 {
    #[inline]
    fn from_f32(x: f32) -> Self {
        x
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        f32::EPSILON as f64 / 2.0
    }
    fn tag() -> &'static str {
        "fp32"
    }
    #[inline]
    fn widen_slice(src: &[Self], dst: &mut [f32]) {
        dst.copy_from_slice(src);
    }
    #[inline]
    fn narrow_slice(src: &[f32], dst: &mut [Self]) {
        dst.copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_exact<L: LowPrec>(vals: &[f32]) {
        for &v in vals {
            let low = L::from_f32(v);
            assert_eq!(L::from_f32(low.to_f32()).to_f32(), low.to_f32());
        }
    }

    #[test]
    fn lowprec_roundtrip_stability() {
        let vals = [0.0, 1.0, -1.0, 0.333, 1234.5, -9.75e-3];
        roundtrip_exact::<F16>(&vals);
        roundtrip_exact::<B16>(&vals);
        roundtrip_exact::<f32>(&vals);
    }

    #[test]
    fn unit_roundoffs_ordered() {
        // fp32 < fp16 < bf16 in coarseness.
        assert!(f32::unit_roundoff() < F16::unit_roundoff());
        assert!(F16::unit_roundoff() < B16::unit_roundoff());
    }

    #[test]
    fn real_ops_f32_f64() {
        fn check<R: Real>() {
            assert_eq!(R::ZERO + R::ONE, R::ONE);
            assert!((R::from_f64(2.0).sqrt().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-6);
            assert!((R::from_f64(-3.5).abs().to_f64() - 3.5).abs() < 1e-6);
            assert!(
                (R::from_f64(2.0).mul_add(R::from_f64(3.0), R::ONE).to_f64() - 7.0).abs() < 1e-12
            );
            assert!(R::ONE.is_finite());
            assert_eq!(R::ZERO.max(R::ONE), R::ONE);
        }
        check::<f32>();
        check::<f64>();
    }

    #[test]
    fn tags() {
        assert_eq!(F16::tag(), "fp16");
        assert_eq!(B16::tag(), "bf16");
        assert_eq!(<f32 as LowPrec>::tag(), "fp32");
    }
}
