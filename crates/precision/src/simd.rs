//! Runtime-dispatched SIMD bulk conversions between reduced formats and f32.
//!
//! The mixed-precision GEMM widens FP16/BF16 panels to f32 while packing and
//! the CAST phases narrow f32 factors back down; both used to be scalar
//! per-element loops. This module provides bulk `widen`/`narrow` slice
//! operations that dispatch once (cached in a [`OnceLock`]) to the best
//! instruction set the host offers:
//!
//! * **AVX2 + F16C** — 8-lane `VCVTPH2PS`/`VCVTPS2PH` for FP16, 8-lane
//!   integer shift/round for BF16.
//! * **AVX-512F** — 16-lane variants of the same.
//! * **scalar** — the existing software converters, also the portable
//!   fallback and the `HPLAI_KERNEL=portable` forced path.
//!
//! Every SIMD path is **bitwise identical** to the scalar software
//! conversion, including NaN quieting/payload propagation, RNE ties,
//! subnormal flushes and signed zeros; the test suite pins this exhaustively
//! over all 65536 binary16 patterns and structured f32 classes. That makes
//! the dispatch invisible to the rest of the system: forcing a path with
//! `HPLAI_KERNEL` changes speed, never bits.
//!
//! The [`Isa`] enum is also the single source of truth for the GEMM
//! micro-kernel dispatch in `mxp-blas` — one detected/forced level drives
//! both the converters here and the register-tile kernels there.

use crate::{B16, F16};
use std::sync::OnceLock;

/// An instruction-set level the runtime can dispatch kernels to.
///
/// `Portable` is always available; the others are offered only when the host
/// supports every feature the corresponding kernels use. The active level is
/// detected once per process (or forced via `HPLAI_KERNEL`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// Architecture-independent Rust (autovectorized scalar loops).
    Portable,
    /// x86-64 AVX2 + FMA (+ F16C for the FP16 converters when present).
    Avx2,
    /// x86-64 AVX-512F.
    Avx512,
    /// AArch64 Advanced SIMD.
    Neon,
}

impl Isa {
    /// Stable lower-case name, also the accepted `HPLAI_KERNEL` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Portable => "portable",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Parses an `HPLAI_KERNEL` spelling. Case-insensitive; `None` for
    /// anything that is not a known level.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "portable" | "scalar" => Some(Isa::Portable),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            "neon" => Some(Isa::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Isa {
    if std::arch::is_x86_feature_detected!("avx512f") {
        Isa::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("fma")
    {
        Isa::Avx2
    } else {
        Isa::Portable
    }
}

#[cfg(target_arch = "aarch64")]
fn detect() -> Isa {
    if std::arch::is_aarch64_feature_detected!("neon") {
        Isa::Neon
    } else {
        Isa::Portable
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect() -> Isa {
    Isa::Portable
}

/// The best ISA level this host supports, detected once per process.
pub fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

/// `true` if kernels compiled for `isa` may run on this host.
pub fn isa_supported(isa: Isa) -> bool {
    match isa {
        Isa::Portable => true,
        Isa::Avx2 => matches!(detected_isa(), Isa::Avx2 | Isa::Avx512),
        Isa::Avx512 => detected_isa() == Isa::Avx512,
        Isa::Neon => detected_isa() == Isa::Neon,
    }
}

/// Every ISA level usable on this host, `Portable` first.
pub fn supported_isas() -> Vec<Isa> {
    [Isa::Portable, Isa::Avx2, Isa::Avx512, Isa::Neon]
        .into_iter()
        .filter(|&i| isa_supported(i))
        .collect()
}

/// The `HPLAI_KERNEL` override, read and validated once per process.
///
/// `None` when the variable is unset or empty. Panics (once, at first
/// dispatch) on an unknown spelling or a level the host cannot run — a
/// forced kernel that silently fell back would defeat the CI matrix legs
/// that exist to pin each path.
pub fn forced_isa() -> Option<Isa> {
    static FORCED: OnceLock<Option<Isa>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        let raw = std::env::var("HPLAI_KERNEL").ok()?;
        let spelling = raw.trim();
        if spelling.is_empty() {
            return None;
        }
        let isa = Isa::parse(spelling).unwrap_or_else(|| {
            panic!("HPLAI_KERNEL={spelling:?}: expected portable|avx2|avx512|neon")
        });
        assert!(
            isa_supported(isa),
            "HPLAI_KERNEL={} requested but this host only supports {}",
            isa.name(),
            detected_isa().name(),
        );
        Some(isa)
    })
}

/// The ISA level conversions and micro-kernels dispatch to: the
/// `HPLAI_KERNEL` override if set, otherwise the detected best.
pub fn active_isa() -> Isa {
    forced_isa().unwrap_or_else(detected_isa)
}

/// `true` when the 8-lane F16C converters may be used (they need AVX +
/// F16C, which AVX2 does not formally imply).
#[cfg(target_arch = "x86_64")]
fn f16c_available() -> bool {
    static F16C: OnceLock<bool> = OnceLock::new();
    *F16C.get_or_init(|| {
        std::arch::is_x86_feature_detected!("f16c") && std::arch::is_x86_feature_detected!("avx")
    })
}

// ---------------------------------------------------------------------------
// FP16 <-> f32
// ---------------------------------------------------------------------------

/// Widens `src[i]` into `dst[i]` (exact for every binary16 value), using the
/// active ISA level. Panics if the lengths differ.
pub fn widen_f16_slice(src: &[F16], dst: &mut [f32]) {
    widen_f16_slice_with(active_isa(), src, dst);
}

/// [`widen_f16_slice`] with an explicit ISA level — the entry point the
/// differential tests use to exercise every path in one process. Falls back
/// to scalar when the requested level has no FP16 converter (e.g. `Avx2`
/// without F16C, or `Neon`), which is bitwise indistinguishable.
pub fn widen_f16_slice_with(isa: Isa, src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_f16: length mismatch");
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 if f16c_available() => unsafe { x86::widen_f16_f16c(src, dst) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { x86::widen_f16_avx512(src, dst) },
        _ => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.to_f32();
            }
        }
    }
}

/// Narrows `src[i]` into `dst[i]` with round-to-nearest-even, bitwise equal
/// to `F16::from_f32`, using the active ISA level.
pub fn narrow_f16_slice(src: &[f32], dst: &mut [F16]) {
    narrow_f16_slice_with(active_isa(), src, dst);
}

/// [`narrow_f16_slice`] with an explicit ISA level (see
/// [`widen_f16_slice_with`]).
pub fn narrow_f16_slice_with(isa: Isa, src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "narrow_f16: length mismatch");
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 if f16c_available() => unsafe { x86::narrow_f16_f16c(src, dst) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { x86::narrow_f16_avx512(src, dst) },
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = F16::from_f32(s);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// BF16 <-> f32
// ---------------------------------------------------------------------------

/// Widens `src[i]` into `dst[i]` (a 16-bit left shift of the bit pattern),
/// using the active ISA level.
pub fn widen_b16_slice(src: &[B16], dst: &mut [f32]) {
    widen_b16_slice_with(active_isa(), src, dst);
}

/// [`widen_b16_slice`] with an explicit ISA level (see
/// [`widen_f16_slice_with`]).
pub fn widen_b16_slice_with(isa: Isa, src: &[B16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_b16: length mismatch");
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { x86::widen_b16_avx2(src, dst) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { x86::widen_b16_avx512(src, dst) },
        _ => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.to_f32();
            }
        }
    }
}

/// Narrows `src[i]` into `dst[i]` with round-to-nearest-even, bitwise equal
/// to `B16::from_f32`, using the active ISA level.
pub fn narrow_b16_slice(src: &[f32], dst: &mut [B16]) {
    narrow_b16_slice_with(active_isa(), src, dst);
}

/// [`narrow_b16_slice`] with an explicit ISA level (see
/// [`widen_f16_slice_with`]).
pub fn narrow_b16_slice_with(isa: Isa, src: &[f32], dst: &mut [B16]) {
    assert_eq!(src.len(), dst.len(), "narrow_b16: length mismatch");
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 => unsafe { x86::narrow_b16_avx2(src, dst) },
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = B16::from_f32(s);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86-64 conversion bodies. Each function is compiled with the features
    //! it needs via `#[target_feature]` and is only reachable through the
    //! dispatch above, which has verified those features at runtime — that
    //! runtime check is the safety argument for every call site here.
    //!
    //! All loads and stores are unaligned (`loadu`/`storeu`): callers hand
    //! in arbitrary slices. Tails shorter than one vector run the scalar
    //! converter, which each SIMD body matches bit for bit.

    use crate::{B16, F16};
    use core::arch::x86_64::*;

    /// Rounding immediate for `VCVTPS2PH`: static round-to-nearest-even
    /// (MXCSR ignored), matching the software converter exactly.
    const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;

    /// # Safety
    /// Caller must have verified AVX and F16C support.
    #[target_feature(enable = "avx,f16c")]
    pub(super) unsafe fn widen_f16_f16c(src: &[F16], dst: &mut [f32]) {
        let n = src.len();
        // SAFETY: F16 is repr(transparent) over u16.
        let sp = src.as_ptr() as *const u16;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i+8 <= n keeps both the 8-lane load and store in
            // bounds of the equal-length slices.
            let h = _mm_loadu_si128(sp.add(i) as *const __m128i);
            _mm256_storeu_ps(dp.add(i), _mm256_cvtph_ps(h));
            i += 8;
        }
        for j in i..n {
            dst[j] = src[j].to_f32();
        }
    }

    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn widen_f16_avx512(src: &[F16], dst: &mut [f32]) {
        let n = src.len();
        let sp = src.as_ptr() as *const u16;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: 16-lane load/store guarded by i+16 <= n.
            let h = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            _mm512_storeu_ps(dp.add(i), _mm512_cvtph_ps(h));
            i += 16;
        }
        for j in i..n {
            dst[j] = src[j].to_f32();
        }
    }

    /// # Safety
    /// Caller must have verified AVX and F16C support.
    #[target_feature(enable = "avx,f16c")]
    pub(super) unsafe fn narrow_f16_f16c(src: &[f32], dst: &mut [F16]) {
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr() as *mut u16;
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: 8-lane load/store guarded by i+8 <= n.
            let v = _mm256_loadu_ps(sp.add(i));
            _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm256_cvtps_ph::<RNE>(v));
            i += 8;
        }
        for j in i..n {
            dst[j] = F16::from_f32(src[j]);
        }
    }

    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn narrow_f16_avx512(src: &[f32], dst: &mut [F16]) {
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr() as *mut u16;
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: 16-lane load/store guarded by i+16 <= n.
            let v = _mm512_loadu_ps(sp.add(i));
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm512_cvtps_ph::<RNE>(v));
            i += 16;
        }
        for j in i..n {
            dst[j] = F16::from_f32(src[j]);
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn widen_b16_avx2(src: &[B16], dst: &mut [f32]) {
        let n = src.len();
        let sp = src.as_ptr() as *const u16;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: 8-lane load/store guarded by i+8 <= n. Widening is a
            // pure bit shift: bf16 bits become the high half of the f32.
            let h = _mm_loadu_si128(sp.add(i) as *const __m128i);
            let w = _mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(h));
            _mm256_storeu_ps(dp.add(i), _mm256_castsi256_ps(w));
            i += 8;
        }
        for j in i..n {
            dst[j] = src[j].to_f32();
        }
    }

    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn widen_b16_avx512(src: &[B16], dst: &mut [f32]) {
        let n = src.len();
        let sp = src.as_ptr() as *const u16;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: 16-lane load/store guarded by i+16 <= n.
            let h = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            let w = _mm512_slli_epi32::<16>(_mm512_cvtepu16_epi32(h));
            _mm512_storeu_ps(dp.add(i), _mm512_castsi512_ps(w));
            i += 16;
        }
        for j in i..n {
            dst[j] = src[j].to_f32();
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support (used for the AVX-512 level
    /// too — AVX-512F implies AVX2).
    #[target_feature(enable = "avx2,sse4.1")]
    pub(super) unsafe fn narrow_b16_avx2(src: &[f32], dst: &mut [B16]) {
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr() as *mut u16;
        let abs_mask = _mm256_set1_epi32(0x7fff_ffff);
        let exp_all = _mm256_set1_epi32(0x7f80_0000);
        let bias = _mm256_set1_epi32(0x7fff);
        let one = _mm256_set1_epi32(1);
        let quiet = _mm256_set1_epi32(0x0040);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: 8-lane load and 8×u16 store guarded by i+8 <= n.
            let bits = _mm256_castps_si256(_mm256_loadu_ps(sp.add(i)));
            // NaN iff the absolute bits exceed the all-ones exponent; both
            // sides are positive as i32, so a signed compare is exact.
            let is_nan = _mm256_cmpgt_epi32(_mm256_and_si256(bits, abs_mask), exp_all);
            // Round-to-nearest-even on the low 16 bits: add 0x7fff plus the
            // LSB of the kept half, then truncate — the same integer
            // identity `B16::from_f32` applies (no i32 overflow: non-NaN
            // bits are at most 0xff80_0000 + 0x8000).
            let lsb = _mm256_and_si256(_mm256_srli_epi32::<16>(bits), one);
            let rounded = _mm256_add_epi32(_mm256_add_epi32(bits, bias), lsb);
            let kept = _mm256_srli_epi32::<16>(rounded);
            // NaN keeps its truncated payload with the quiet bit forced,
            // exactly like the scalar converter.
            let nan_kept = _mm256_or_si256(_mm256_srli_epi32::<16>(bits), quiet);
            let sel = _mm256_blendv_epi8(kept, nan_kept, is_nan);
            // Every lane fits in 16 bits, so the signed-saturating pack to
            // u16 is value-preserving.
            let lo = _mm256_castsi256_si128(sel);
            let hi = _mm256_extracti128_si256::<1>(sel);
            _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm_packus_epi32(lo, hi));
            i += 8;
        }
        for j in i..n {
            dst[j] = B16::from_f32(src[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for structured-random f32 bit patterns.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn isa_parse_and_name_roundtrip() {
        for isa in [Isa::Portable, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
            assert_eq!(Isa::parse(&isa.name().to_uppercase()), Some(isa));
        }
        assert_eq!(Isa::parse("sse9"), None);
        assert_eq!(Isa::parse(""), None);
    }

    #[test]
    fn supported_isas_starts_portable_and_contains_detected() {
        let isas = supported_isas();
        assert_eq!(isas[0], Isa::Portable);
        assert!(isas.contains(&detected_isa()));
    }

    #[test]
    fn widen_f16_exhaustive_all_isas() {
        // Every one of the 65536 binary16 patterns, on every ISA level the
        // host has, must widen to the identical f32 bit pattern the
        // software converter produces.
        let src: Vec<F16> = (0..=u16::MAX).map(F16).collect();
        let reference: Vec<u32> = src.iter().map(|h| h.to_f32().to_bits()).collect();
        for isa in supported_isas() {
            let mut dst = vec![0.0f32; src.len()];
            widen_f16_slice_with(isa, &src, &mut dst);
            for (i, (d, r)) in dst.iter().zip(&reference).enumerate() {
                assert_eq!(
                    d.to_bits(),
                    *r,
                    "isa {} widen_f16 mismatch at pattern {i:#06x}",
                    isa.name()
                );
            }
        }
    }

    #[test]
    fn widen_b16_exhaustive_all_isas() {
        let src: Vec<B16> = (0..=u16::MAX).map(B16).collect();
        let reference: Vec<u32> = src.iter().map(|h| h.to_f32().to_bits()).collect();
        for isa in supported_isas() {
            let mut dst = vec![0.0f32; src.len()];
            widen_b16_slice_with(isa, &src, &mut dst);
            for (i, (d, r)) in dst.iter().zip(&reference).enumerate() {
                assert_eq!(
                    d.to_bits(),
                    *r,
                    "isa {} widen_b16 mismatch at pattern {i:#06x}",
                    isa.name()
                );
            }
        }
    }

    /// f32 inputs covering every conversion class: all binary16 values (the
    /// exact cases), halfway ties in both directions, subnormal flushes,
    /// overflow, infinities, NaNs with payloads, signed zeros, and a dense
    /// band of structured-random patterns.
    fn narrow_inputs() -> Vec<f32> {
        let mut v: Vec<f32> = (0..=u16::MAX).map(|b| F16(b).to_f32()).collect();
        v.extend([
            0.0,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            -f32::NAN,
            f32::from_bits(0x7f80_0001), // signalling NaN, tiny payload
            f32::from_bits(0xffc5_4321), // quiet NaN, payload
            f32::from_bits(0x0000_0001), // smallest f32 subnormal
            f32::from_bits(0x8000_0001),
            f32::from_bits(0x007f_ffff), // largest f32 subnormal
            f32::MAX,
            f32::MIN,
            65504.0,  // f16 max
            65520.0,  // rounds to f16 inf
            65519.99, // rounds to f16 max
            1.0 + 2.0f32.powi(-11),
            1.0 + 2.0f32.powi(-12), // tie, rounds to even
            1.0 + 3.0 * 2.0f32.powi(-12),
        ]);
        let mut s = 0x9e3779b97f4a7c15u64;
        for _ in 0..100_000 {
            v.push(f32::from_bits(xorshift(&mut s) as u32));
        }
        v
    }

    #[test]
    fn narrow_f16_structured_all_isas() {
        let src = narrow_inputs();
        let reference: Vec<u16> = src.iter().map(|&x| F16::from_f32(x).0).collect();
        for isa in supported_isas() {
            let mut dst = vec![F16(0); src.len()];
            narrow_f16_slice_with(isa, &src, &mut dst);
            for (i, (d, r)) in dst.iter().zip(&reference).enumerate() {
                assert_eq!(
                    d.0,
                    *r,
                    "isa {} narrow_f16 mismatch for input {:#010x}",
                    isa.name(),
                    src[i].to_bits()
                );
            }
        }
    }

    #[test]
    fn narrow_b16_structured_all_isas() {
        let src = narrow_inputs();
        let reference: Vec<u16> = src.iter().map(|&x| B16::from_f32(x).0).collect();
        for isa in supported_isas() {
            let mut dst = vec![B16(0); src.len()];
            narrow_b16_slice_with(isa, &src, &mut dst);
            for (i, (d, r)) in dst.iter().zip(&reference).enumerate() {
                assert_eq!(
                    d.0,
                    *r,
                    "isa {} narrow_b16 mismatch for input {:#010x}",
                    isa.name(),
                    src[i].to_bits()
                );
            }
        }
    }

    #[test]
    fn odd_lengths_and_offsets_hit_tails() {
        // Slices that are not a multiple of the vector width, at offsets
        // that misalign the base pointer, must still match scalar — the
        // tail loop and the unaligned loads both get exercised.
        let mut s = 0x0123_4567_89ab_cdefu64;
        let vals: Vec<f32> = (0..97)
            .map(|_| (xorshift(&mut s) as i32 as f32) * 1.5e-5)
            .collect();
        for isa in supported_isas() {
            for off in 0..4 {
                for len in [0, 1, 7, 8, 9, 15, 16, 17, 31] {
                    if off + len > vals.len() {
                        continue;
                    }
                    let src = &vals[off..off + len];
                    let mut n16 = vec![F16(0); len];
                    narrow_f16_slice_with(isa, src, &mut n16);
                    for (i, h) in n16.iter().enumerate() {
                        assert_eq!(h.0, F16::from_f32(src[i]).0);
                    }
                    let mut back = vec![0.0f32; len];
                    widen_f16_slice_with(isa, &n16, &mut back);
                    for (i, w) in back.iter().enumerate() {
                        assert_eq!(w.to_bits(), n16[i].to_f32().to_bits());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let src = [F16(0); 3];
        let mut dst = [0.0f32; 2];
        widen_f16_slice(&src, &mut dst);
    }
}
