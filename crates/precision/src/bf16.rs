//! bfloat16: the truncated-exponent-preserving 16-bit format.
//!
//! Not used by the paper's headline runs (V100/MI250X tensor cores take
//! binary16), but HPL-MxP rules allow any reduced format, and bfloat16 is
//! the natural ablation point: same dynamic range as f32, three fewer
//! mantissa bits than binary16.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A bfloat16 floating-point number (1 sign, 8 exponent, 7 mantissa bits).
///
/// ```
/// use mxp_precision::B16;
/// let x = B16::from_f32(1.0);
/// assert_eq!(x.to_f32(), 1.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct B16(pub u16);

impl B16 {
    /// Positive zero.
    pub const ZERO: B16 = B16(0);
    /// One.
    pub const ONE: B16 = B16(0x3f80);
    /// Positive infinity.
    pub const INFINITY: B16 = B16(0x7f80);
    /// A canonical quiet NaN.
    pub const NAN: B16 = B16(0x7fc0);
    /// Machine epsilon (2^-7): distance from 1.0 to the next value.
    pub const EPSILON: B16 = B16(0x3c00);

    /// Builds a value from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        B16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    ///
    /// bfloat16 is the upper half of binary32, so RNE reduces to integer
    /// rounding on the low 16 bits.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Keep sign + quiet bit; avoid rounding a NaN payload into inf.
            return B16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x0000_8000u32;
        let lower = bits & 0xffff;
        let mut upper = bits >> 16;
        if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
            upper += 1; // carry may roll into exponent / infinity: correct RNE
        }
        B16(upper as u16)
    }

    /// Converts from `f64` by first rounding to `f32`.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Widens to `f32` exactly.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Widens to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// `true` if the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.to_f32().is_finite()
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Self {
        B16(self.0 & 0x7fff)
    }
}

impl fmt::Debug for B16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B16({})", self.to_f32())
    }
}

impl fmt::Display for B16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for B16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! impl_b16_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for B16 {
            type Output = B16;
            #[inline]
            fn $method(self, rhs: B16) -> B16 {
                B16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for B16 {
            #[inline]
            fn $assign_method(&mut self, rhs: B16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_b16_binop!(Add, add, AddAssign, add_assign, +);
impl_b16_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_b16_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_b16_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for B16 {
    type Output = B16;
    #[inline]
    fn neg(self) -> B16 {
        B16(self.0 ^ 0x8000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(B16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(B16::from_f32(1.0).to_bits(), 0x3f80);
        assert_eq!(B16::from_f32(-2.0).to_bits(), 0xc000);
        assert_eq!(B16::from_f32(f32::INFINITY), B16::INFINITY);
        assert!(B16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn dynamic_range_matches_f32() {
        // 1e38 overflows f16 but not bf16.
        assert!(B16::from_f32(1e38).is_finite());
        assert!(!B16::from_f32(3.4e38).is_finite());
        assert!(B16::from_f32(1e-38).to_f32() > 0.0);
    }

    #[test]
    fn rne_ties() {
        // 1 + 2^-8 is the midpoint between 1.0 and 1 + 2^-7: ties to even.
        let tie = 1.0f32 + 2.0f32.powi(-8);
        assert_eq!(B16::from_f32(tie).to_bits(), 0x3f80);
        let tie2 = 1.0f32 + 3.0 * 2.0f32.powi(-8);
        assert_eq!(B16::from_f32(tie2).to_bits(), 0x3f82);
    }

    #[test]
    fn exhaustive_roundtrip() {
        for bits in 0u16..=0xffff {
            let b = B16::from_bits(bits);
            let back = B16::from_f32(b.to_f32());
            if b.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), bits, "roundtrip failed at {bits:#06x}");
            }
        }
    }

    #[test]
    fn rounding_carry_into_infinity() {
        // Largest finite bf16 is 0x7f7f; anything at or past the midpoint to
        // the next step must round to infinity.
        let max = B16::from_bits(0x7f7f).to_f32();
        let step = max * 2.0f32.powi(-7);
        assert_eq!(B16::from_f32(max + step), B16::INFINITY);
        assert_eq!(B16::from_f32(max).to_bits(), 0x7f7f);
    }

    #[test]
    fn arithmetic() {
        let a = B16::from_f32(1.5);
        let b = B16::from_f32(2.5);
        assert_eq!((a + b).to_f32(), 4.0);
        assert_eq!((a * b).to_f32(), 3.75);
        assert_eq!((-a).to_f32(), -1.5);
        assert_eq!(a.abs(), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn precision_is_coarser_than_f16() {
        // bf16 has 8 significand bits vs f16's 11: 1 + 2^-9 is representable
        // in f16 but rounds away in bf16.
        let x = 1.0f32 + 2.0f32.powi(-9);
        assert_eq!(B16::from_f32(x).to_f32(), 1.0);
        assert_ne!(crate::F16::from_f32(x).to_f32(), 1.0);
    }
}
