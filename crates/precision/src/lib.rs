//! # mxp-precision — software reduced-precision floating point
//!
//! The paper's mixed-precision LU factorization stores the `L` and `U`
//! panels in IEEE-754 binary16 (FP16) and multiplies them on tensor cores
//! that accumulate in FP32 (`cublasSgemmEx` / `rocblas_gemm_ex`). This crate
//! provides the arithmetic substrate for reproducing that behaviour on a CPU:
//!
//! * [`F16`] — IEEE-754 binary16 with round-to-nearest-even conversions,
//!   exactly the storage format the paper's CAST / TRANS_CAST phases produce.
//! * [`B16`] — bfloat16, included because HPL-MxP submissions are permitted
//!   to use any reduced format; useful for precision ablations.
//! * [`Real`] / [`LowPrec`] — the traits the BLAS layer (`mxp-blas`) is
//!   generic over, so the same GEMM kernel runs in f64, f32, or mixed
//!   f16×f16→f32 exactly as the benchmark requires.
//! * [`ulp`] — ULP-distance helpers used by the test suites to state
//!   accuracy bounds precisely.
//!
//! All conversions are implemented from first principles (no `half` crate)
//! and are exhaustively tested against every one of the 65536 binary16 bit
//! patterns.

#![deny(missing_docs)]

mod bf16;
mod f16;
pub mod simd;
mod traits;
pub mod ulp;

pub use bf16::B16;
pub use f16::F16;
pub use simd::Isa;
pub use traits::{LowPrec, Real};

/// Unit roundoff of IEEE binary16 (2^-11).
pub const F16_EPS: f64 = 4.8828125e-4;
/// Unit roundoff of bfloat16 (2^-8).
pub const B16_EPS: f64 = 3.90625e-3;
/// Largest finite binary16 value.
pub const F16_MAX: f64 = 65504.0;
/// Smallest positive normal binary16 value (2^-14).
pub const F16_MIN_POSITIVE: f64 = 6.103515625e-5;
/// Smallest positive subnormal binary16 value (2^-24).
pub const F16_MIN_SUBNORMAL: f64 = 5.960464477539063e-8;
