//! IEEE-754 binary16 implemented in software.
//!
//! The representation is the raw 16-bit pattern; all arithmetic widens to
//! `f32`, operates there, and rounds back with round-to-nearest-even — the
//! same semantics tensor-core hardware applies when it ingests FP16 operands.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An IEEE-754 binary16 ("half precision") floating-point number.
///
/// ```
/// use mxp_precision::F16;
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// assert_eq!((x + x).to_f32(), 3.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct F16(pub u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7c00;
const MAN_MASK: u16 = 0x03ff;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xbc00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A canonical quiet NaN.
    pub const NAN: F16 = F16(0x7e00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest finite value (-65504).
    pub const MIN: F16 = F16(0xfbff);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2^-24).
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon: distance from 1.0 to the next representable value
    /// (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Builds a value from its raw IEEE-754 bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw IEEE-754 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even, the rounding mode the
    /// paper's CAST phase (`float` → `__half`) uses on both GPU vendors.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x))
    }

    /// Converts from `f64` by first rounding to `f32`.
    ///
    /// This is what the benchmark's data path does (matrix entries are
    /// generated in f64, stored in f32, and only then cast to f16), but
    /// note it is **not** always identical to a single direct f64→f16
    /// rounding: an f64 value lying past an f16 rounding boundary but
    /// rounding back onto it at f32 precision double-rounds. Use
    /// [`F16::from_f64_direct`] for a single correctly-rounded step.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Single-step round-to-nearest-even conversion from `f64` (no
    /// intermediate f32, hence no double rounding).
    pub fn from_f64_direct(x: f64) -> Self {
        F16(f64_to_f16_bits(x))
    }

    /// Widens to `f32` exactly (every binary16 value is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widens to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` if the value is NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// `true` if the value is +∞ or −∞.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// `true` if the value is finite (neither infinite nor NaN).
    #[inline]
    pub const fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// `true` for subnormal values (nonzero with a zero exponent field).
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// `true` for +0.0 and −0.0.
    #[inline]
    pub const fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// `true` if the sign bit is set (including −0.0 and NaNs with the sign
    /// bit set).
    #[inline]
    pub const fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub const fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for F16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    #[inline]
    fn from(x: F16) -> f64 {
        x.to_f64()
    }
}

macro_rules! impl_f16_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for F16 {
            #[inline]
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_f16_binop!(Add, add, AddAssign, add_assign, +);
impl_f16_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_f16_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_f16_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

/// Round-to-nearest-even conversion from binary32 to binary16 bits.
///
/// Handles normals, subnormals, overflow to infinity, and NaN payload
/// truncation (always producing a quiet NaN).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 0xff {
        return if man == 0 {
            sign | EXP_MASK // ±inf
        } else {
            // NaN: force quiet bit, keep top payload bits so distinct NaNs
            // remain distinguishable where possible.
            sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK)
        };
    }

    // Unbiased binary32 exponent; for exp == 0 (f32 subnormal) the magnitude
    // is below 2^-126, far under the f16 subnormal threshold, so it rounds
    // to ±0 via the generic subnormal path below.
    let e = exp - 127;

    if e >= 16 {
        // 2^16 > F16::MAX rounded up, always overflows to infinity.
        return sign | EXP_MASK;
    }

    if e >= -14 {
        // Destination is normal (possibly rounding up into infinity).
        let half_exp = (e + 15) as u32; // 1..=30
        let combined = (half_exp << 10) | (man >> 13);
        let rem = man & 0x1fff;
        let round_up = rem > 0x1000 || (rem == 0x1000 && (combined & 1) == 1);
        let rounded = combined + round_up as u32;
        // A mantissa carry propagates into the exponent; carrying out of
        // exponent 30 yields exactly 0x7c00 (infinity), which is correct RNE.
        sign | (rounded as u16)
    } else {
        // Destination is subnormal (or zero). The f32 significand with its
        // implicit bit, shifted so that ulp = 2^-24.
        if exp == 0 {
            // f32 subnormal: < 2^-126, rounds to zero at f16 precision.
            return sign;
        }
        let sig = 0x0080_0000u32 | man; // value = sig * 2^(e-23)
                                        // target integer = round(sig * 2^(e+1)) i.e. shift right by -(e+1).
        let shift = (-(e + 1)) as u32; // 14..=
        if shift >= 32 {
            return sign;
        }
        let kept = sig >> shift;
        let rem_mask = (1u32 << shift) - 1;
        let rem = sig & rem_mask;
        let half = 1u32 << (shift - 1);
        let round_up = rem > half || (rem == half && (kept & 1) == 1);
        let rounded = kept + round_up as u32;
        // `rounded` can legitimately reach 0x400: that is MIN_POSITIVE and
        // the bit pattern is already correct (exponent field becomes 1).
        sign | (rounded as u16)
    }
}

/// Round-to-nearest-even conversion from binary64 directly to binary16
/// bits (single rounding step).
pub fn f64_to_f16_bits(x: f64) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 48) & 0x8000) as u16;
    let exp = ((bits >> 52) & 0x7ff) as i32;
    let man = bits & 0x000f_ffff_ffff_ffff;

    if exp == 0x7ff {
        return if man == 0 {
            sign | EXP_MASK
        } else {
            sign | EXP_MASK | 0x0200 | ((man >> 42) as u16 & MAN_MASK)
        };
    }
    let e = exp - 1023;
    if e >= 16 {
        return sign | EXP_MASK;
    }
    if e >= -14 {
        // Normal destination: keep 10 mantissa bits of 52.
        let half_exp = (e + 15) as u64; // 1..=30
        let combined = (half_exp << 10) | (man >> 42);
        let rem = man & 0x3ff_ffff_ffff;
        let half = 0x200_0000_0000u64;
        let round_up = rem > half || (rem == half && (combined & 1) == 1);
        sign | (combined + round_up as u64) as u16
    } else {
        if exp == 0 {
            return sign; // f64 subnormals are far below f16 range
        }
        let sig = 0x0010_0000_0000_0000u64 | man; // value = sig * 2^(e-52)
                                                  // Round(sig * 2^(e+24-52+...)): target ulp is 2^-24, so shift right
                                                  // by (52 - (e + 24)) = 28 - e... derive: value/2^-24 = sig*2^(e+24-52).
        let shift = (52 - 24 - e) as u64; // e <= -15 → shift >= 43
        if shift >= 64 {
            return sign;
        }
        let kept = sig >> shift;
        let rem_mask = (1u64 << shift) - 1;
        let rem = sig & rem_mask;
        let half = 1u64 << (shift - 1);
        let round_up = rem > half || (rem == half && (kept & 1) == 1);
        sign | (kept + round_up as u64) as u16
    }
}

/// Exact widening conversion from binary16 bits to binary32.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & SIGN_MASK) as u32) << 16;
    let exp = ((h & EXP_MASK) >> 10) as u32;
    let man = (h & MAN_MASK) as u32;

    let bits = match (exp, man) {
        (0, 0) => sign, // ±0
        (0, _) => {
            // Subnormal: normalize. value = man * 2^-24.
            let shift = man.leading_zeros() - 21; // bits needed to bring MSB to position 10
            let norm_man = (man << shift) & MAN_MASK as u32;
            let norm_exp = 127 - 15 - shift + 1;
            sign | (norm_exp << 23) | (norm_man << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000, // ±inf
        (0x1f, _) => sign | 0x7f80_0000 | 0x0040_0000 | (man << 13), // NaN (quiet)
        _ => sign | ((exp + 127 - 15) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f32(-1.0).to_bits(), 0xbc00);
        assert_eq!(F16::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7bff);
        assert_eq!(F16::from_f32(f32::INFINITY).to_bits(), 0x7c00);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY).to_bits(), 0xfc00);
        assert!(F16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // 65520 is the midpoint between MAX (65504) and the first
        // non-representable step (65536); RNE at the boundary goes to inf
        // because the would-be mantissa is even... actually 65520 ties to
        // 65536 (even candidate in the extended format) => infinity.
        assert_eq!(F16::from_f32(65520.0).to_bits(), 0x7c00);
        // Just below the midpoint rounds down to MAX.
        assert_eq!(F16::from_f32(65519.996), F16::MAX);
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
        assert_eq!(F16::from_f32(-65520.0).to_bits(), 0xfc00);
        assert_eq!(F16::from_f32(1e10).to_bits(), 0x7c00);
    }

    #[test]
    fn subnormals() {
        assert_eq!(F16::from_f32(5.960_464_5e-8).to_bits(), 0x0001);
        assert_eq!(F16::MIN_SUBNORMAL.to_f32(), 5.960_464_5e-8);
        // Half of the smallest subnormal ties to even => 0.
        assert_eq!(F16::from_f32(5.960_464_5e-8 / 2.0).to_bits(), 0x0000);
        // 0.75 of the smallest subnormal rounds up.
        assert_eq!(F16::from_f32(5.960_464_5e-8 * 0.75).to_bits(), 0x0001);
        // 1.5 ulp ties to even => 2 ulp.
        assert_eq!(F16::from_f32(5.960_464_5e-8 * 1.5).to_bits(), 0x0002);
        // f32 subnormal input flushes to zero at f16 scale.
        assert_eq!(F16::from_f32(f32::from_bits(1)).to_bits(), 0x0000);
        // Largest subnormal.
        assert_eq!(F16::from_bits(0x03ff).to_f32(), 6.097_555e-5_f32);
        // Rounding a value just under MIN_POSITIVE up into the normal range.
        let just_under = 6.103_515_6e-5_f32 - 1e-9;
        assert_eq!(F16::from_f32(just_under).to_bits(), 0x0400);
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even (1.0).
        let tie = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie).to_bits(), 0x3c00);
        // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even (1+2^-9).
        let tie2 = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie2).to_bits(), 0x3c02);
        // Slightly above the tie rounds up.
        assert_eq!(F16::from_f32(tie + 1e-7).to_bits(), 0x3c01);
    }

    #[test]
    fn exhaustive_roundtrip_f16_f32_f16() {
        // Every finite f16 must survive f16 -> f32 -> f16 exactly; NaNs must
        // stay NaN.
        for bits in 0u16..=0xffff {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "NaN lost at {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "roundtrip failed at {bits:#06x}");
            }
        }
    }

    #[test]
    fn exhaustive_widening_matches_reference() {
        // Cross-check our widening against an independent arbitrary-precision
        // style computation from the field decomposition.
        for bits in 0u16..=0xffff {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let sign = if bits & 0x8000 != 0 { -1.0f64 } else { 1.0 };
            let exp = ((bits >> 10) & 0x1f) as i32;
            let man = (bits & 0x3ff) as f64;
            let expect = if exp == 0x1f {
                sign * f64::INFINITY
            } else if exp == 0 {
                sign * man * 2f64.powi(-24)
            } else {
                sign * (1.0 + man / 1024.0) * 2f64.powi(exp - 15)
            };
            assert_eq!(h.to_f64(), expect, "widening mismatch at {bits:#06x}");
        }
    }

    #[test]
    fn exhaustive_conversion_is_monotonic() {
        // Walking the positive finite f16 values upward, the f32 images must
        // be strictly increasing (orders agree), same for negatives.
        let mut prev = f32::NEG_INFINITY;
        for bits in 0u16..0x7c00 {
            let v = F16::from_bits(bits).to_f32();
            assert!(v > prev || bits == 0, "not monotonic at {bits:#06x}");
            prev = v;
        }
    }

    #[test]
    fn arithmetic_via_f32() {
        let a = F16::from_f32(3.0);
        let b = F16::from_f32(4.0);
        assert_eq!((a + b).to_f32(), 7.0);
        assert_eq!((a - b).to_f32(), -1.0);
        assert_eq!((a * b).to_f32(), 12.0);
        assert_eq!((a / b).to_f32(), 0.75);
        assert_eq!((-a).to_f32(), -3.0);
        let mut c = a;
        c += b;
        assert_eq!(c.to_f32(), 7.0);
    }

    #[test]
    fn relative_error_bound_for_normals() {
        // |fl16(x) - x| <= 2^-11 |x| for x in the normal range.
        let mut x = 7.0e-5f32;
        while x < 6.0e4 {
            let err = (F16::from_f32(x).to_f32() - x).abs();
            assert!(err <= x * 4.8829e-4, "error too large at {x}");
            x *= 1.37;
        }
    }

    #[test]
    fn classification() {
        assert!(F16::NAN.is_nan());
        assert!(!F16::NAN.is_finite());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::MAX.is_finite());
        assert!(F16::MIN_SUBNORMAL.is_subnormal());
        assert!(!F16::MIN_POSITIVE.is_subnormal());
        assert!(F16::ZERO.is_zero());
        assert!(F16::from_f32(-0.0).is_zero());
        assert!(F16::from_f32(-0.0).is_sign_negative());
        assert!(F16::NEG_ONE.is_sign_negative());
        assert_eq!(F16::NEG_ONE.abs(), F16::ONE);
    }

    #[test]
    fn ordering() {
        assert!(F16::from_f32(1.0) < F16::from_f32(2.0));
        assert!(F16::from_f32(-1.0) < F16::from_f32(0.0));
        assert!(F16::NAN.partial_cmp(&F16::ONE).is_none());
    }

    #[test]
    fn from_f64_path() {
        assert_eq!(F16::from_f64(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f64(65504.0).to_bits(), 0x7bff);
        assert_eq!(F16::from_f64(1e300).to_bits(), 0x7c00);
        assert!(F16::from_f64(f64::NAN).is_nan());
    }

    #[test]
    fn direct_f64_known_values() {
        assert_eq!(F16::from_f64_direct(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f64_direct(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f64_direct(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f64_direct(65504.0).to_bits(), 0x7bff);
        assert_eq!(F16::from_f64_direct(65520.0).to_bits(), 0x7c00);
        assert_eq!(F16::from_f64_direct(1e300).to_bits(), 0x7c00);
        assert_eq!(F16::from_f64_direct(5.960464477539063e-8).to_bits(), 0x0001);
        assert_eq!(
            F16::from_f64_direct(5.960464477539063e-8 / 2.0).to_bits(),
            0x0000
        );
        assert!(F16::from_f64_direct(f64::NAN).is_nan());
        assert_eq!(F16::from_f64_direct(f64::NEG_INFINITY).to_bits(), 0xfc00);
    }

    #[test]
    fn direct_f64_exhaustive_roundtrip() {
        // Every finite f16 widened to f64 and converted back directly must
        // round-trip exactly.
        for bits in 0u16..=0xffff {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            assert_eq!(
                F16::from_f64_direct(h.to_f64()).to_bits(),
                bits,
                "direct roundtrip failed at {bits:#06x}"
            );
        }
    }

    #[test]
    fn direct_f64_ties_to_even() {
        // Midpoint between 1.0 and 1 + 2^-10 at full f64 precision.
        let tie = 1.0f64 + 2.0f64.powi(-11);
        assert_eq!(F16::from_f64_direct(tie).to_bits(), 0x3c00);
        // A hair above the midpoint rounds up — including amounts far below
        // f32 resolution (where the two-step path double-rounds down).
        let above = tie + 2.0f64.powi(-40);
        assert_eq!(F16::from_f64_direct(above).to_bits(), 0x3c01);
        // The two-step path collapses it back onto the tie and rounds to
        // even: a genuine double-rounding divergence.
        assert_eq!(F16::from_f64(above).to_bits(), 0x3c00);
    }

    #[test]
    fn direct_and_two_step_agree_away_from_f32_ties() {
        // For values exactly representable in f32, the two paths agree.
        let mut s = 1u64;
        for _ in 0..10_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (((s >> 11) as f64 / 9.007199254740992e15) - 0.5) * 100.0;
            let v32 = v as f32 as f64; // force f32-representable
            assert_eq!(
                F16::from_f64_direct(v32).to_bits(),
                F16::from_f64(v32).to_bits(),
                "divergence at {v32}"
            );
        }
    }
}
