//! # mxp-model — the paper's analytic performance model (§IV)
//!
//! Implements Equations (1)–(5) verbatim on top of the device and network
//! models, plus the tuning methodology built on them:
//!
//! * Eq. (2): serial per-iteration upper bound from the GETRF/TRSM/GEMM
//!   flop rates;
//! * Eq. (3): the **projected upper bound** for the distributed runtime,
//!   `T(parallel)`, including the process grid and panel transfer terms;
//! * Eq. (4): per-node communication volume under a `Q_r × Q_c` node-local
//!   grid;
//! * Eq. (5): inter-node communication time with shared NICs;
//! * [`search_b`] / [`search_grid`]: the §V-C/§V-E parameter searches.
//!
//! The paper is explicit that this model "is used solely as a guideline for
//! tuning and is not a complete model"; the same is true here — the
//! critical-path driver in `hplai-core` is the high-fidelity estimate, and
//! the `model_vs_sim` harness quantifies the gap.

#![deny(missing_docs)]

use mxp_gpusim::GcdModel;
use mxp_netsim::NetworkConfig;

/// The tunables of one distributed HPL-AI run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LuParams {
    /// Global matrix dimension `N`.
    pub n: usize,
    /// Block size `B`.
    pub b: usize,
    /// Process rows `P_r`.
    pub p_r: usize,
    /// Process columns `P_c`.
    pub p_c: usize,
    /// Node-local grid rows `Q_r`.
    pub q_r: usize,
    /// Node-local grid columns `Q_c`.
    pub q_c: usize,
}

impl LuParams {
    /// Local matrix dimension `N_L = N / P_r` (square local blocks, the
    /// paper's `N_Lr = N_Lc` assumption).
    pub fn n_local(&self) -> usize {
        self.n / self.p_r
    }

    /// Node grid dimensions `K_r = P_r / Q_r`, `K_c = P_c / Q_c`.
    pub fn node_grid(&self) -> (usize, usize) {
        (self.p_r / self.q_r, self.p_c / self.q_c)
    }

    /// Total GCD count.
    pub fn gcds(&self) -> usize {
        self.p_r * self.p_c
    }
}

/// Eq. (2): serial upper-bound runtime of one factorization step at
/// trailing size `n` — `B³/GETRF_fr + 2·n·B²/TRSM_fr + n²·B/GEMM_fr`.
pub fn serial_iter_time(dev: &GcdModel, n: usize, b: usize) -> f64 {
    let bf = b as f64;
    let nf = n as f64;
    bf.powi(3) / dev.getrf_rate(b)
        + 2.0 * nf * bf * bf / dev.trsm_rate(b, n)
        + nf * nf * bf / dev.gemm_mixed_rate(n, n, b, n)
}

/// Eq. (3): the projected upper bound `T(parallel)` for the whole
/// factorization. `NBB` (network broadcast bandwidth) is derived from the
/// interconnect model with the node-local grid's sharer counts.
pub fn parallel_time(dev: &GcdModel, net: &NetworkConfig, p: &LuParams) -> f64 {
    let n = p.n as f64;
    let b = p.b as f64;
    let n_l = p.n_local();
    let pr = p.p_r as f64;
    let pc = p.p_c as f64;
    // Panel broadcasts put Q_r (resp. Q_c) ranks of a node on the wire at
    // once; Eq. (5) folds that into the effective bandwidth.
    let nbb_r = net.effective_node_bw(p.q_r as u32);
    let nbb_c = net.effective_node_bw(p.q_c as u32);

    let t_getrf = n * b * b / dev.getrf_rate(p.b);
    let t_trsm_row = n * n * b / (pr * dev.trsm_rate(p.b, n_l));
    let t_trsm_col = n * n * b / (pc * dev.trsm_rate(p.b, n_l));
    // 2·N² bytes per FP16 panel family over the run.
    let t_bcast_row = 2.0 * n * n / (pr * nbb_r);
    let t_bcast_col = 2.0 * n * n / (pc * nbb_c);
    let t_gemm = 2.0 / 3.0 * n * n * n / (pr * pc * dev.gemm_mixed_rate(n_l, n_l, p.b, n_l));
    t_getrf + t_trsm_row + t_trsm_col + t_bcast_row + t_bcast_col + t_gemm
}

/// Eq. (1) with the look-ahead optimization applied: the last two terms
/// (panel broadcast and GEMM) overlap, so the total replaces their sum with
/// a max (§IV-B "Look-ahead").
pub fn parallel_time_lookahead(dev: &GcdModel, net: &NetworkConfig, p: &LuParams) -> f64 {
    let n = p.n as f64;
    let b = p.b as f64;
    let n_l = p.n_local();
    let pr = p.p_r as f64;
    let pc = p.p_c as f64;
    let nbb_r = net.effective_node_bw(p.q_r as u32);
    let nbb_c = net.effective_node_bw(p.q_c as u32);

    let t_getrf = n * b * b / dev.getrf_rate(p.b);
    let t_trsm =
        n * n * b / (pr * dev.trsm_rate(p.b, n_l)) + n * n * b / (pc * dev.trsm_rate(p.b, n_l));
    let t_bcast = 2.0 * n * n / (pr * nbb_r) + 2.0 * n * n / (pc * nbb_c);
    let t_gemm = 2.0 / 3.0 * n * n * n / (pr * pc * dev.gemm_mixed_rate(n_l, n_l, p.b, n_l));
    t_getrf + t_trsm + t_bcast.max(t_gemm)
}

/// Eq. (4): bytes one node moves through its NICs over the whole run under
/// node grid `K_r × K_c` — `2N²/K_r + 2N²/K_c`.
pub fn node_data_volume(p: &LuParams) -> f64 {
    let n = p.n as f64;
    let (k_r, k_c) = p.node_grid();
    2.0 * n * n / k_r as f64 + 2.0 * n * n / k_c as f64
}

/// Eq. (5): inter-node communication time with the shared-NIC effect —
/// `2N²Q_r/(P_r·NBN) + 2N²Q_c/(P_c·NBN)`.
pub fn inter_node_comm_time(net: &NetworkConfig, p: &LuParams) -> f64 {
    let n = p.n as f64;
    let nbn = net.effective_node_bw(1);
    2.0 * n * n * p.q_r as f64 / (p.p_r as f64 * nbn)
        + 2.0 * n * n * p.q_c as f64 / (p.p_c as f64 * nbn)
}

/// §V-C block-size search: evaluates `parallel_time_lookahead` over the
/// candidate block sizes and returns `(best_b, predicted_time)`.
/// Additionally enforces the paper's guard that GETRF stays under 5% of the
/// GEMM time (critical-path protection); candidates violating it are
/// discarded unless none survive.
pub fn search_b(
    dev: &GcdModel,
    net: &NetworkConfig,
    base: &LuParams,
    candidates: &[usize],
) -> (usize, f64) {
    let mut best: Option<(usize, f64)> = None;
    let mut best_unguarded: Option<(usize, f64)> = None;
    for &b in candidates {
        if !base.n.is_multiple_of(b) {
            continue;
        }
        let p = LuParams { b, ..*base };
        let t = parallel_time_lookahead(dev, net, &p);
        let n_l = p.n_local();
        let guard = dev.getrf_time(b) <= 0.05 * dev.gemm_mixed_time(n_l, n_l, b, n_l);
        if guard && best.is_none_or(|(_, bt)| t < bt) {
            best = Some((b, t));
        }
        if best_unguarded.is_none_or(|(_, bt)| t < bt) {
            best_unguarded = Some((b, t));
        }
    }
    best.or(best_unguarded).expect("no feasible block size")
}

/// §V-D local-problem-size search: among candidate `N_L` values (each a
/// multiple of `B`) that fit both device memory and the host staging copy
/// (`host_bytes_per_rank`; §V-A's "available CPU memory being smaller than
/// the combined GPU memory"), pick the best predicted GFLOPS/GCD. Bigger
/// is usually better (the N³/N² argument), **except** when a candidate
/// lands on a pathological leading dimension — the paper's
/// `119808 > 122880` result.
pub fn search_nl(
    dev: &GcdModel,
    net: &NetworkConfig,
    base: &LuParams,
    candidates: &[usize],
    host_bytes_per_rank: u64,
) -> (usize, f64) {
    let mut best: Option<(usize, f64)> = None;
    for &n_l in candidates {
        if n_l % base.b != 0 || !dev.fits_local_matrix(n_l, base.b) {
            continue;
        }
        // The factored FP32 matrix is copied back to host memory for
        // iterative refinement (Algorithm 1 line 31).
        if 4 * (n_l as u64) * (n_l as u64) > host_bytes_per_rank {
            continue;
        }
        let p = LuParams {
            n: n_l * base.p_r,
            ..*base
        };
        let t = parallel_time_lookahead(dev, net, &p);
        // GFLOPS/GCD rather than raw time: different N_L solve different
        // problems, so normalize by useful work.
        let nf = p.n as f64;
        let gflops = (2.0 / 3.0 * nf * nf * nf + 1.5 * nf * nf) / (p.gcds() as f64 * t) / 1e9;
        if best.is_none_or(|(_, g)| gflops > g) {
            best = Some((n_l, gflops));
        }
    }
    best.expect("no feasible N_L")
}

/// §V-E node-local grid search: all factorizations `Q_r × Q_c = Q`,
/// scored by Eq. (5); returns the minimizer.
pub fn search_grid(net: &NetworkConfig, base: &LuParams, q: usize) -> (usize, usize) {
    let mut best = (1usize, q);
    let mut best_t = f64::INFINITY;
    for q_r in 1..=q {
        if !q.is_multiple_of(q_r) {
            continue;
        }
        let q_c = q / q_r;
        if !base.p_r.is_multiple_of(q_r) || !base.p_c.is_multiple_of(q_c) {
            continue;
        }
        let p = LuParams { q_r, q_c, ..*base };
        let t = inter_node_comm_time(net, &p);
        if t < best_t {
            best_t = t;
            best = (q_r, q_c);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxp_netsim::{frontier_network, summit_network};

    fn frontier_params() -> LuParams {
        LuParams {
            n: 119808 * 32,
            b: 3072,
            p_r: 32,
            p_c: 32,
            q_r: 2,
            q_c: 4,
        }
    }

    fn summit_params() -> LuParams {
        LuParams {
            n: 61440 * 54,
            b: 768,
            p_r: 54,
            p_c: 54,
            q_r: 3,
            q_c: 2,
        }
    }

    #[test]
    fn helpers() {
        let p = frontier_params();
        assert_eq!(p.n_local(), 119808);
        assert_eq!(p.node_grid(), (16, 8));
        assert_eq!(p.gcds(), 1024);
    }

    #[test]
    fn serial_bound_is_dominated_by_gemm_at_scale() {
        let dev = GcdModel::mi250x_gcd();
        let n = 119808;
        let b = 3072;
        let total = serial_iter_time(&dev, n, b);
        let gemm_only = (n as f64).powi(2) * b as f64 / dev.gemm_mixed_rate(n, n, b, n);
        // GEMM is the largest single term of Eq. (2) at full local size.
        assert!(gemm_only / total > 0.5, "GEMM share {}", gemm_only / total);
        let trsm_only = 2.0 * n as f64 * (b as f64).powi(2) / dev.trsm_rate(b, n);
        assert!(gemm_only > trsm_only);
    }

    #[test]
    fn parallel_time_scales_down_with_more_gcds() {
        let dev = GcdModel::mi250x_gcd();
        let net = frontier_network();
        let small = frontier_params();
        let big = LuParams {
            p_r: 64,
            p_c: 64,
            ..small
        };
        // Same N on 4x the GCDs must be faster.
        assert!(parallel_time(&dev, &net, &big) < parallel_time(&dev, &net, &small));
    }

    #[test]
    fn lookahead_never_slower() {
        let dev = GcdModel::v100();
        let net = summit_network();
        let p = summit_params();
        assert!(parallel_time_lookahead(&dev, &net, &p) <= parallel_time(&dev, &net, &p));
    }

    #[test]
    fn eq4_volume_prefers_square_node_grids() {
        // K_r ≈ K_c minimizes 2N²/K_r + 2N²/K_c at fixed K_r·K_c — the
        // paper's "we suggest K_r ≈ K_c".
        let balanced = LuParams {
            q_r: 2,
            q_c: 4,
            p_r: 32,
            p_c: 32,
            n: 1 << 20,
            b: 1024,
        };
        let skewed = LuParams {
            q_r: 8,
            q_c: 1,
            ..balanced
        };
        // Balanced: K = (16, 8); skewed: K = (4, 32).
        assert!(node_data_volume(&balanced) < node_data_volume(&skewed));
    }

    #[test]
    fn search_b_picks_papers_blocks() {
        // §V-C: "B = 768 or 1024 for Summit's V100s and B = 3072 for
        // Frontier's MI250Xs".
        let v = GcdModel::v100();
        let snet = summit_network();
        let sp = summit_params();
        let (b_summit, _) = search_b(&v, &snet, &sp, &[256, 512, 768, 1024, 2048, 3072]);
        assert!(
            b_summit == 768 || b_summit == 1024,
            "Summit picked B = {b_summit}"
        );
        let m = GcdModel::mi250x_gcd();
        let fnet = frontier_network();
        let fp = frontier_params();
        let (b_frontier, _) = search_b(&m, &fnet, &fp, &[512, 1024, 1536, 2048, 3072, 4096]);
        assert_eq!(b_frontier, 3072, "Frontier picked B = {b_frontier}");
    }

    #[test]
    fn search_nl_picks_papers_local_size() {
        // §V-D: "N_L = 119808 provides better performance over 122880",
        // and the larger 125952 does not fit the GCD at B = 3072.
        let m = GcdModel::mi250x_gcd();
        let net = frontier_network();
        let base = frontier_params();
        // Usable host memory per rank: 512 GB node minus OS/caches/MPI,
        // conservatively 480 GB across 8 ranks.
        let host = 60_000_000_000u64;
        let (nl, _) = search_nl(
            &m,
            &net,
            &base,
            &[110592, 116736, 119808, 122880, 125952],
            host,
        );
        assert_eq!(nl, 119808, "picked N_L = {nl}");
    }

    #[test]
    fn search_nl_prefers_larger_when_clean() {
        // Off the LDA cliff, bigger N_L amortizes communication better.
        let m = GcdModel::mi250x_gcd();
        let net = frontier_network();
        let base = frontier_params();
        let (nl, _) = search_nl(&m, &net, &base, &[59904, 89856, 119808], 60_000_000_000);
        assert_eq!(nl, 119808);
    }

    #[test]
    fn search_grid_balances() {
        let net = frontier_network();
        let p = frontier_params();
        let (qr, qc) = search_grid(&net, &p, 8);
        // Eq. 5 minimum at Q_r ≈ Q_c among divisors of 8 → (2,4) or (4,2).
        assert!((qr, qc) == (2, 4) || (qr, qc) == (4, 2), "picked {qr}x{qc}");
    }

    #[test]
    fn eq5_sharers_hurt() {
        let net = frontier_network();
        let base = frontier_params();
        let shared = LuParams {
            q_r: 8,
            q_c: 1,
            ..base
        };
        assert!(inter_node_comm_time(&net, &shared) > inter_node_comm_time(&net, &base));
    }

    #[test]
    fn bigger_n_amortizes_communication() {
        // GEMM work grows as N³ while panel traffic grows as N²: the
        // runtime share of communication must shrink with N (the reason the
        // benchmark fills GPU memory, §V-A).
        let dev = GcdModel::mi250x_gcd();
        let net = frontier_network();
        let mk = |n: usize| LuParams {
            n,
            ..frontier_params()
        };
        let frac = |n: usize| {
            let p = mk(n);
            let comm = inter_node_comm_time(&net, &p);
            comm / parallel_time(&dev, &net, &p)
        };
        // The N³ GEMM term only dominates once the local matrix is near
        // the paper's memory-filling N_L; compare a small N_L against the
        // full 119808 (both off the Fig. 7 LDA cliff).
        assert!(frac(32 * 119808) < frac(32 * 7680));
    }
}
