//! HPL-AI matrix and right-hand-side generation on top of the jump-ahead LCG.
//!
//! Generation is embarrassingly parallel: every entry is a pure function of
//! its stream index, and the jump-ahead makes landing at any index O(log N²),
//! so the tile/RHS fills dispatch independent column (or row-chunk) streams
//! across the rayon pool. Because each work item recomputes exactly the
//! stream the serial code would have produced at that position — and items
//! never share state — the parallel fills are **bitwise identical** to the
//! serial ones at every thread count (pinned by tests here and in
//! `tests/prop.rs`).

use crate::lcg::Lcg;
use rayon::prelude::*;

/// Entry count below which a fill runs serially: one jump-ahead is ~64
/// affine folds, so tiny tiles lose more to dispatch + extra jumps than
/// they gain from parallelism.
const MIN_PAR_ENTRIES: usize = 1 << 14;

/// Fixed row-chunk length for parallel RHS fills, so the work decomposition
/// itself (not just the values) is independent of the pool width.
const RHS_CHUNK: usize = 4096;

/// How the diagonal of the generated matrix is constructed.
///
/// `Eq`/`Hash` because the kind participates in content-addressed cache
/// keys (generated matrices are pure functions of `(seed, n, kind)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatrixKind {
    /// The HPL-AI input class: off-diagonal entries uniform in `[-0.5, 0.5)`
    /// and diagonal `A(i,i) = n/2 + 1`, which makes `A` strictly diagonally
    /// dominant (each off-diagonal row sum is `< (n-1)/2`), so LU
    /// factorization without pivoting is backward stable — the property the
    /// benchmark's no-pivoting rule depends on (§II of the paper).
    DiagDominant,
    /// Pure uniform `[-0.5, 0.5)` entries everywhere. *Not* safe for
    /// unpivoted LU; provided as the negative control used by tests to show
    /// that the benchmark's conditioning requirement is load-bearing.
    Uniform,
}

/// Deterministic generator of the global HPL-AI system `A·x = b`.
///
/// Every entry is a pure function of `(i, j)` (column-major stream indexing),
/// so any rank can materialize any tile without communication, and the
/// iterative-refinement phase can regenerate `A` in FP64 on the fly.
///
/// ```
/// use mxp_lcg::{MatrixGen, MatrixKind};
/// let g = MatrixGen::new(42, 100, MatrixKind::DiagDominant);
/// // Pure: the same entry twice is identical.
/// assert_eq!(g.entry(3, 7), g.entry(3, 7));
/// // Diagonal dominance.
/// assert_eq!(g.entry(5, 5), 51.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MatrixGen {
    seed: u64,
    n: usize,
    kind: MatrixKind,
}

impl MatrixGen {
    /// Creates a generator for an `n × n` system with the given seed.
    pub fn new(seed: u64, n: usize, kind: MatrixKind) -> Self {
        MatrixGen { seed, n, kind }
    }

    /// Global problem size `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The diagonal value used by [`MatrixKind::DiagDominant`].
    #[inline]
    pub fn diag_value(&self) -> f64 {
        self.n as f64 / 2.0 + 1.0
    }

    /// Matrix entry `A(i,j)` in FP64.
    ///
    /// Stream position is `j·n + i` (column-major), so filling a column is a
    /// single jump followed by sequential draws.
    #[inline]
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        if i == j && self.kind == MatrixKind::DiagDominant {
            return self.diag_value();
        }
        let idx = j as u128 * self.n as u128 + i as u128;
        let mut g = Lcg::at(self.seed, idx);
        g.next_unit()
    }

    /// Right-hand-side entry `b(i)`, drawn from the stream region after the
    /// matrix (positions `n² + i`).
    #[inline]
    pub fn rhs(&self, i: usize) -> f64 {
        debug_assert!(i < self.n);
        let idx = self.n as u128 * self.n as u128 + i as u128;
        let mut g = Lcg::at(self.seed, idx);
        g.next_unit()
    }

    /// Fills a column-major tile `out[r + c·lda] = A(rows.start + r,
    /// cols.start + c)` using one jump per column plus sequential draws —
    /// the fast path used by ranks to materialize their local blocks.
    pub fn fill_tile(
        &self,
        rows: core::ops::Range<usize>,
        cols: core::ops::Range<usize>,
        lda: usize,
        out: &mut [f64],
    ) {
        let m = rows.end - rows.start;
        assert!(rows.end <= self.n && cols.end <= self.n);
        assert!(lda >= m);
        assert!(out.len() >= (cols.len() - 1) * lda + m || cols.is_empty());
        let ncols = cols.len();
        if ncols == 0 || m == 0 {
            return;
        }
        let fill_col = |c: usize, col: &mut [f64]| {
            let j = cols.start + c;
            let base = j as u128 * self.n as u128 + rows.start as u128;
            let mut g = Lcg::at(self.seed, base);
            for (r, slot) in col.iter_mut().take(m).enumerate() {
                let v = g.next_unit();
                let i = rows.start + r;
                *slot = if i == j && self.kind == MatrixKind::DiagDominant {
                    self.diag_value()
                } else {
                    v
                };
            }
        };
        let body = &mut out[..(ncols - 1) * lda + m];
        if ncols > 1 && m * ncols >= MIN_PAR_ENTRIES && rayon::current_num_threads() > 1 {
            // One task per column: each jumps straight to its own stream
            // position, so the values are the serial ones bit for bit.
            body.par_chunks_mut(lda)
                .enumerate()
                .for_each(|(c, col)| fill_col(c, col));
        } else {
            for (c, col) in body.chunks_mut(lda).enumerate() {
                fill_col(c, col);
            }
        }
    }

    /// Same as [`fill_tile`](Self::fill_tile) but producing FP32, the
    /// precision the factorization works in after the initial cast.
    pub fn fill_tile_f32(
        &self,
        rows: core::ops::Range<usize>,
        cols: core::ops::Range<usize>,
        lda: usize,
        out: &mut [f32],
    ) {
        let m = rows.end - rows.start;
        assert!(rows.end <= self.n && cols.end <= self.n);
        assert!(lda >= m);
        let ncols = cols.len();
        if ncols == 0 || m == 0 {
            return;
        }
        let fill_col = |c: usize, col: &mut [f32]| {
            let j = cols.start + c;
            let base = j as u128 * self.n as u128 + rows.start as u128;
            let mut g = Lcg::at(self.seed, base);
            for (r, slot) in col.iter_mut().take(m).enumerate() {
                let v = g.next_unit();
                let i = rows.start + r;
                *slot = if i == j && self.kind == MatrixKind::DiagDominant {
                    self.diag_value() as f32
                } else {
                    v as f32
                };
            }
        };
        let body = &mut out[..(ncols - 1) * lda + m];
        if ncols > 1 && m * ncols >= MIN_PAR_ENTRIES && rayon::current_num_threads() > 1 {
            body.par_chunks_mut(lda)
                .enumerate()
                .for_each(|(c, col)| fill_col(c, col));
        } else {
            for (c, col) in body.chunks_mut(lda).enumerate() {
                fill_col(c, col);
            }
        }
    }

    /// Fills `out[i] = b(rows.start + i)` for a contiguous row range.
    pub fn fill_rhs(&self, rows: core::ops::Range<usize>, out: &mut [f64]) {
        assert!(rows.end <= self.n);
        let len = rows.len().min(out.len());
        if len >= MIN_PAR_ENTRIES && rayon::current_num_threads() > 1 {
            // Fixed-size row chunks, each jumping to its own stream offset:
            // same values as one sequential sweep, bit for bit.
            out[..len]
                .par_chunks_mut(RHS_CHUNK)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    let start = rows.start + ci * RHS_CHUNK;
                    let base = self.n as u128 * self.n as u128 + start as u128;
                    let mut g = Lcg::at(self.seed, base);
                    for slot in chunk.iter_mut() {
                        *slot = g.next_unit();
                    }
                });
        } else {
            let base = self.n as u128 * self.n as u128 + rows.start as u128;
            let mut g = Lcg::at(self.seed, base);
            for slot in &mut out[..len] {
                *slot = g.next_unit();
            }
        }
    }

    /// Infinity norm of the diagonal, `‖diag(A)‖∞`, needed by the paper's
    /// iterative-refinement stopping criterion (Algorithm 1, line 44).
    pub fn diag_inf_norm(&self) -> f64 {
        match self.kind {
            MatrixKind::DiagDominant => self.diag_value(),
            MatrixKind::Uniform => {
                // No closed form; scan (only used in tests at small n).
                (0..self.n)
                    .map(|i| self.entry(i, i).abs())
                    .fold(0.0, f64::max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_pure() {
        let g = MatrixGen::new(7, 64, MatrixKind::DiagDominant);
        for i in [0usize, 5, 63] {
            for j in [0usize, 5, 63] {
                assert_eq!(g.entry(i, j), g.entry(i, j));
            }
        }
    }

    #[test]
    fn offdiag_in_range() {
        let g = MatrixGen::new(3, 32, MatrixKind::DiagDominant);
        for i in 0..32 {
            for j in 0..32 {
                if i != j {
                    let v = g.entry(i, j);
                    assert!((-0.5..0.5).contains(&v), "A({i},{j}) = {v}");
                }
            }
        }
    }

    #[test]
    fn strictly_diagonally_dominant() {
        let n = 48;
        let g = MatrixGen::new(11, n, MatrixKind::DiagDominant);
        for i in 0..n {
            let row_sum: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| g.entry(i, j).abs())
                .sum();
            assert!(
                g.entry(i, i) > row_sum,
                "row {i} not dominant: diag {} vs sum {row_sum}",
                g.entry(i, i)
            );
        }
    }

    #[test]
    fn uniform_kind_has_random_diagonal() {
        let g = MatrixGen::new(11, 16, MatrixKind::Uniform);
        assert!(g.entry(4, 4).abs() < 0.5);
    }

    #[test]
    fn tile_matches_entry() {
        let n = 40;
        let g = MatrixGen::new(99, n, MatrixKind::DiagDominant);
        let (r0, r1, c0, c1) = (5, 17, 30, 38);
        let lda = 16;
        let mut tile = vec![0.0f64; lda * (c1 - c0)];
        g.fill_tile(r0..r1, c0..c1, lda, &mut tile);
        for j in c0..c1 {
            for i in r0..r1 {
                assert_eq!(tile[(j - c0) * lda + (i - r0)], g.entry(i, j));
            }
        }
    }

    #[test]
    fn tile_f32_matches_entry() {
        let n = 24;
        let g = MatrixGen::new(5, n, MatrixKind::DiagDominant);
        let mut tile = vec![0.0f32; 24 * 24];
        g.fill_tile_f32(0..n, 0..n, n, &mut tile);
        for j in 0..n {
            for i in 0..n {
                assert_eq!(tile[j * n + i], g.entry(i, j) as f32);
            }
        }
    }

    #[test]
    fn tile_crossing_diagonal() {
        let n = 20;
        let g = MatrixGen::new(1, n, MatrixKind::DiagDominant);
        let mut tile = vec![0.0f64; n * n];
        g.fill_tile(0..n, 0..n, n, &mut tile);
        for i in 0..n {
            assert_eq!(tile[i * n + i], g.diag_value());
        }
    }

    #[test]
    fn rhs_matches_bulk_fill() {
        let n = 33;
        let g = MatrixGen::new(77, n, MatrixKind::DiagDominant);
        let mut all = vec![0.0; n];
        g.fill_rhs(0..n, &mut all);
        for (i, &v) in all.iter().enumerate() {
            assert_eq!(v, g.rhs(i));
        }
        // RHS must differ from matrix entries (distinct stream region).
        assert_ne!(g.rhs(0), g.entry(0, 0));
    }

    #[test]
    fn different_seeds_give_different_matrices() {
        let a = MatrixGen::new(1, 16, MatrixKind::DiagDominant);
        let b = MatrixGen::new(2, 16, MatrixKind::DiagDominant);
        assert_ne!(a.entry(0, 1), b.entry(0, 1));
    }

    #[test]
    fn parallel_fill_is_bitwise_identical_to_serial() {
        // Shapes chosen to cross MIN_PAR_ENTRIES so the parallel dispatch
        // actually runs under threads=4; equality must be exact (bitwise),
        // not approximate.
        let n = 256;
        let g = MatrixGen::new(1234, n, MatrixKind::DiagDominant);
        let big = MatrixGen::new(99, 20_000, MatrixKind::DiagDominant);
        let run = |threads: &str| {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let mut tile = vec![0.0f64; n * n];
            g.fill_tile(0..n, 0..n, n, &mut tile);
            let mut tile32 = vec![0.0f32; n * n];
            g.fill_tile_f32(0..n, 0..n, n, &mut tile32);
            let mut rhs = vec![0.0f64; 20_000];
            big.fill_rhs(0..20_000, &mut rhs);
            std::env::remove_var("RAYON_NUM_THREADS");
            (tile, tile32, rhs)
        };
        let serial = run("1");
        let par = run("4");
        assert!(serial.0 == par.0, "fill_tile diverged across thread counts");
        assert!(
            serial.1 == par.1,
            "fill_tile_f32 diverged across thread counts"
        );
        assert!(serial.2 == par.2, "fill_rhs diverged across thread counts");
        // Sanity: the parallel fill still matches the pure entry function.
        assert_eq!(par.0[5 * n + 3], g.entry(3, 5));
        assert_eq!(par.2[12_345], big.rhs(12_345));
    }

    #[test]
    fn large_n_entry_access_is_fast_enough() {
        // O(log(N²)) jumps even for the Frontier-scale N; this would hang if
        // access were O(N²).
        let g = MatrixGen::new(9, 20_606_976, MatrixKind::DiagDominant);
        let v = g.entry(20_000_000, 123_456);
        assert!((-0.5..0.5).contains(&v));
    }
}
