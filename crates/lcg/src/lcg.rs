//! The 64-bit LCG core and its O(log n) jump-ahead.

/// Multiplier of the MMIX linear congruential generator (Knuth).
pub const LCG_A: u64 = 6364136223846793005;
/// Increment of the MMIX linear congruential generator.
pub const LCG_C: u64 = 1442695040888963407;

/// A 64-bit linear congruential generator `x ← a·x + c (mod 2⁶⁴)`.
///
/// ```
/// use mxp_lcg::Lcg;
/// let mut seq = Lcg::new(42);
/// let (x0, x1, x2) = (seq.next_u64(), seq.next_u64(), seq.next_u64());
/// // Jumping two steps from the start lands on the third output's state.
/// let mut jumped = Lcg::new(42);
/// jumped.skip(2);
/// assert_eq!(jumped.next_u64(), x2);
/// let _ = (x0, x1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator whose *next* output is `step(seed)`.
    ///
    /// The raw seed itself is never emitted, so low-entropy seeds (0, 1, …)
    /// do not leak into the matrix.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Lcg { state: seed }
    }

    /// Advances one step and returns the new state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
        self.state
    }

    /// Advances one step and maps the state to a uniform value in
    /// `[-0.5, 0.5)` with 53 significant bits — the HPL-AI off-diagonal
    /// entry distribution.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        u64_to_unit(self.next_u64())
    }

    /// Jumps forward `n` steps in O(log n) multiplications.
    pub fn skip(&mut self, n: u128) {
        let (a, c) = affine_pow(n);
        self.state = self.state.wrapping_mul(a).wrapping_add(c);
    }

    /// Returns the generator positioned `n` steps after `seed`
    /// (equivalent to `Lcg::new(seed)` followed by `skip(n)`).
    #[inline]
    pub fn at(seed: u64, n: u128) -> Self {
        let mut g = Lcg::new(seed);
        g.skip(n);
        g
    }

    /// Current internal state (useful for tests and checkpointing).
    #[inline]
    pub const fn state(&self) -> u64 {
        self.state
    }
}

/// Maps a u64 to a uniform f64 in `[-0.5, 0.5)` using the top 53 bits.
#[inline]
pub(crate) fn u64_to_unit(x: u64) -> f64 {
    // (x >> 11) is uniform in [0, 2^53); scale to [0,1) then shift.
    (x >> 11) as f64 * (1.0 / 9007199254740992.0) - 0.5
}

/// Computes the affine map of `n` composed LCG steps.
///
/// One step is `x ↦ a·x + c`. Composing `n` steps yields `x ↦ aₙ·x + cₙ`
/// with `aₙ = aⁿ` and `cₙ = c·(aⁿ⁻¹ + … + a + 1)`, all modulo 2⁶⁴. The
/// result is obtained by binary exponentiation over affine-map composition:
/// `(a₁,c₁) ∘ (a₂,c₂) = (a₁·a₂, a₂·c₁ + c₂)` (apply map 1 first).
pub fn affine_pow(mut n: u128) -> (u64, u64) {
    // Identity map.
    let mut acc_a: u64 = 1;
    let mut acc_c: u64 = 0;
    // Current squared base map: initially one LCG step.
    let mut base_a = LCG_A;
    let mut base_c = LCG_C;
    while n > 0 {
        if n & 1 == 1 {
            // acc = acc then base.
            acc_a = acc_a.wrapping_mul(base_a);
            acc_c = acc_c.wrapping_mul(base_a).wrapping_add(base_c);
        }
        // base = base then base.
        base_c = base_c.wrapping_mul(base_a).wrapping_add(base_c);
        base_a = base_a.wrapping_mul(base_a);
        n >>= 1;
    }
    (acc_a, acc_c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_zero_is_identity() {
        let g = Lcg::new(123);
        let mut h = g;
        h.skip(0);
        assert_eq!(g, h);
    }

    #[test]
    fn skip_matches_sequential() {
        for &n in &[1u128, 2, 3, 7, 64, 1000, 65537] {
            let mut seq = Lcg::new(0xdead_beef);
            for _ in 0..n {
                seq.next_u64();
            }
            let jumped = Lcg::at(0xdead_beef, n);
            assert_eq!(seq.state(), jumped.state(), "mismatch at n={n}");
        }
    }

    #[test]
    fn skip_composes() {
        let mut a = Lcg::new(7);
        a.skip(12345);
        a.skip(67890);
        let mut b = Lcg::new(7);
        b.skip(12345 + 67890);
        assert_eq!(a, b);
    }

    #[test]
    fn huge_jumps_dont_overflow() {
        // N² for N = 20,606,976 (the Frontier headline run) exceeds u64.
        let n = 20_606_976u128;
        let mut g = Lcg::new(1);
        g.skip(n * n + n);
        // Just exercising it: must terminate and produce some state.
        assert_ne!(g.state(), 1);
    }

    #[test]
    fn unit_range_and_mean() {
        let mut g = Lcg::new(2022);
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        const N: usize = 100_000;
        for _ in 0..N {
            let v = g.next_unit();
            assert!((-0.5..0.5).contains(&v));
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        let mean = sum / N as f64;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            min < -0.49 && max > 0.49,
            "range not covered: [{min},{max}]"
        );
    }

    #[test]
    fn unit_variance() {
        // Var of U(-0.5, 0.5) is 1/12.
        let mut g = Lcg::new(5);
        const N: usize = 100_000;
        let mut sq = 0.0;
        for _ in 0..N {
            let v = g.next_unit();
            sq += v * v;
        }
        let var = sq / N as f64;
        assert!((var - 1.0 / 12.0).abs() < 0.005, "variance {var}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lcg::new(1);
        let mut b = Lcg::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn affine_pow_one_is_single_step() {
        assert_eq!(affine_pow(1), (LCG_A, LCG_C));
    }

    #[test]
    fn affine_pow_linear_in_exponent() {
        // (a,c)^(m+n) == (a,c)^m ∘ (a,c)^n
        let (am, cm) = affine_pow(37);
        let (an, cn) = affine_pow(101);
        let (asum, csum) = affine_pow(138);
        assert_eq!(asum, am.wrapping_mul(an));
        assert_eq!(csum, cm.wrapping_mul(an).wrapping_add(cn));
    }
}
