//! # mxp-lcg — jump-ahead linear congruential matrix generation
//!
//! HPL-AI fills the global N×N matrix with pseudo-random entries from a
//! 64-bit linear congruential generator. The property the paper (and the
//! Fugaku implementation it descends from) relies on is that an LCG can be
//! advanced `n` steps in O(log n) time, so **any** entry `A(i,j)` can be
//! regenerated from scratch by any rank:
//!
//! * at setup, each rank fills only its local block-cyclic tiles, and
//! * during iterative refinement, the residual `r = b − A·x̃` is computed by
//!   regenerating `A` in FP64 on the fly (Algorithm 1, line 38) instead of
//!   keeping a second full-precision copy of the matrix in memory.
//!
//! The generator is the textbook MMIX LCG; jumping is affine-map
//! exponentiation by squaring modulo 2⁶⁴.

#![deny(missing_docs)]

mod gen;
mod lcg;

pub use gen::{MatrixGen, MatrixKind};
pub use lcg::{affine_pow, Lcg, LCG_A, LCG_C};
