//! Property-based tests for the jump-ahead LCG and matrix generator.

use mxp_lcg::{affine_pow, Lcg, MatrixGen, MatrixKind};
use proptest::prelude::*;

proptest! {
    /// Jumping m+n steps equals jumping m then n, from any seed.
    #[test]
    fn jump_is_additive(seed: u64, m in 0u64..1_000_000, n in 0u64..1_000_000) {
        let mut split = Lcg::new(seed);
        split.skip(m as u128);
        split.skip(n as u128);
        let mut joint = Lcg::new(seed);
        joint.skip(m as u128 + n as u128);
        prop_assert_eq!(split, joint);
    }

    /// affine_pow(n) applied to a state equals n sequential steps
    /// (checked for small n where sequential is affordable).
    #[test]
    fn affine_matches_iteration(seed: u64, n in 0usize..2000) {
        let (a, c) = affine_pow(n as u128);
        let jumped = seed.wrapping_mul(a).wrapping_add(c);
        let mut g = Lcg::new(seed);
        for _ in 0..n {
            g.next_u64();
        }
        prop_assert_eq!(g.state(), jumped);
    }

    /// Matrix entries are independent of access pattern: filling a tile and
    /// probing single entries agree everywhere.
    #[test]
    fn tile_entry_agreement(seed: u64, n in 2usize..48, probe_i in 0usize..48, probe_j in 0usize..48) {
        let i = probe_i % n;
        let j = probe_j % n;
        let g = MatrixGen::new(seed, n, MatrixKind::DiagDominant);
        let mut tile = vec![0.0; n * n];
        g.fill_tile(0..n, 0..n, n, &mut tile);
        prop_assert_eq!(tile[j * n + i], g.entry(i, j));
    }

    /// Off-diagonal magnitudes stay below 0.5, so diagonal dominance holds
    /// for every seed (the benchmark's no-pivoting precondition).
    #[test]
    fn dominance_for_all_seeds(seed: u64, n in 2usize..32) {
        let g = MatrixGen::new(seed, n, MatrixKind::DiagDominant);
        for i in 0..n {
            let row: f64 = (0..n).filter(|&j| j != i).map(|j| g.entry(i, j).abs()).sum();
            prop_assert!(g.entry(i, i) > row);
        }
    }

    /// Parallel tile fill is bitwise identical to the serial path for any
    /// seed and any shape above the parallel-dispatch floor: each column
    /// jumps to its own stream position and draws the same values the
    /// serial sweep would have.
    #[test]
    fn parallel_fill_matches_serial(seed: u64, n in 130usize..200) {
        let g = MatrixGen::new(seed, n, MatrixKind::DiagDominant);
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let mut serial = vec![0.0; n * n];
        g.fill_tile(0..n, 0..n, n, &mut serial);
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let mut par = vec![0.0; n * n];
        g.fill_tile(0..n, 0..n, n, &mut par);
        std::env::remove_var("RAYON_NUM_THREADS");
        prop_assert_eq!(serial, par);
    }

    /// Unit mapping stays in [-0.5, 0.5).
    #[test]
    fn unit_range(seed: u64) {
        let mut g = Lcg::new(seed);
        for _ in 0..64 {
            let v = g.next_unit();
            prop_assert!((-0.5..0.5).contains(&v));
        }
    }
}
