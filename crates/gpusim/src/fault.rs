//! Injectable per-GCD fault states (§VI-B operational findings).
//!
//! The paper's full-scale campaigns were dominated not by algorithmic
//! limits but by *operational* failure modes: GCDs that are permanently
//! slow out of the factory, devices that degrade mid-run when power or
//! thermal management throttles them, thermal runaway where a device gets
//! progressively slower, and outright hangs ("we observed several fabric
//! hangs during this Frontier run"). This module models those states as
//! iteration-dependent speed multipliers so the supervision machinery has
//! realistic faults to detect.
//!
//! A [`GcdSpeed`] combines a GCD's base fleet multiplier (manufacturing
//! variability, [`crate::GcdFleet`]) with any injected [`GcdFaultKind`]s
//! and answers "how fast is this device at iteration `k`?".

/// Effective speed multiplier of a hard-failed GCD.
///
/// The thread-per-rank runtime cannot lose a process mid-run — a vanished
/// rank would deadlock every collective, exactly like the real machine's
/// fabric hangs. A hard failure is therefore modeled as the device limping
/// at 2% of nominal: the pipeline stalls behind it so severely that only
/// early termination (the paper's remedy) ends the run in useful time.
pub const FAILED_SPEED: f64 = 0.02;

/// Floor below which thermal runaway stops decaying (a fully throttled
/// device still makes some progress).
pub const RUNAWAY_FLOOR: f64 = 0.05;

/// One injectable device fault, as an iteration-dependent speed factor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GcdFaultKind {
    /// Permanently slow from the start of the run (a bad device the fleet
    /// scan should have caught): speed is multiplied by `factor` < 1.
    Slowdown {
        /// Speed multiplier applied at every iteration (0.33 ⇒ 3× slower).
        factor: f64,
    },
    /// Nominal until iteration `at`, then multiplied by `factor` for the
    /// rest of the run (mid-run power/thermal capping).
    DegradeAt {
        /// First affected iteration.
        at: usize,
        /// Speed multiplier from `at` onward.
        factor: f64,
    },
    /// Thermal runaway: from `onset` the speed decays geometrically by
    /// `decay` per iteration (`factor = decay^(k - onset)`), floored at
    /// [`RUNAWAY_FLOOR`].
    ThermalRunaway {
        /// First affected iteration.
        onset: usize,
        /// Per-iteration decay ratio in (0, 1).
        decay: f64,
    },
    /// Hard failure at iteration `at`: the device drops to
    /// [`FAILED_SPEED`] — effectively a hang the run cannot recover from
    /// without intervention.
    Fail {
        /// Iteration the device fails at.
        at: usize,
    },
}

impl GcdFaultKind {
    /// Speed factor this fault contributes at iteration `iter` (1.0 before
    /// onset / when inactive).
    pub fn factor_at(&self, iter: usize) -> f64 {
        match *self {
            GcdFaultKind::Slowdown { factor } => factor,
            GcdFaultKind::DegradeAt { at, factor } => {
                if iter >= at {
                    factor
                } else {
                    1.0
                }
            }
            GcdFaultKind::ThermalRunaway { onset, decay } => {
                if iter >= onset {
                    decay.powi((iter - onset) as i32).max(RUNAWAY_FLOOR)
                } else {
                    1.0
                }
            }
            GcdFaultKind::Fail { at } => {
                if iter >= at {
                    FAILED_SPEED
                } else {
                    1.0
                }
            }
        }
    }

    /// First iteration at which the fault takes effect.
    pub fn onset(&self) -> usize {
        match *self {
            GcdFaultKind::Slowdown { .. } => 0,
            GcdFaultKind::DegradeAt { at, .. } => at,
            GcdFaultKind::ThermalRunaway { onset, .. } => onset,
            GcdFaultKind::Fail { at } => at,
        }
    }

    /// Short machine-readable name (CSV/event-log key).
    pub fn label(&self) -> &'static str {
        match self {
            GcdFaultKind::Slowdown { .. } => "slow-gcd",
            GcdFaultKind::DegradeAt { .. } => "degrade",
            GcdFaultKind::ThermalRunaway { .. } => "thermal-runaway",
            GcdFaultKind::Fail { .. } => "fail",
        }
    }
}

/// A fault pinned to one GCD of the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GcdFault {
    /// Fleet index (== rank in the default placement) of the faulty GCD.
    pub gcd: usize,
    /// The fault state.
    pub kind: GcdFaultKind,
}

/// Iteration-dependent speed of one GCD: base fleet multiplier × the
/// product of every injected fault's factor.
#[derive(Clone, Debug)]
pub struct GcdSpeed {
    base: f64,
    faults: Vec<GcdFaultKind>,
}

impl GcdSpeed {
    /// A healthy device at `base` × nominal speed.
    pub fn new(base: f64) -> Self {
        assert!(base > 0.0, "speed must be positive");
        GcdSpeed {
            base,
            faults: Vec::new(),
        }
    }

    /// A healthy nominal device (speed 1.0 at every iteration).
    pub fn nominal() -> Self {
        GcdSpeed::new(1.0)
    }

    /// Adds an injected fault.
    pub fn with_fault(mut self, kind: GcdFaultKind) -> Self {
        self.faults.push(kind);
        self
    }

    /// Base multiplier without faults (the fleet's view of this device).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// `true` if any fault is injected on this device.
    pub fn is_faulty(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Effective speed at iteration `iter` (always > 0; kernel times are
    /// divided by this).
    pub fn at(&self, iter: usize) -> f64 {
        let mut s = self.base;
        for f in &self.faults {
            s *= f.factor_at(iter);
        }
        s.max(FAILED_SPEED * self.base)
    }

    /// Earliest fault onset, if any fault is injected.
    pub fn first_onset(&self) -> Option<usize> {
        self.faults.iter().map(|f| f.onset()).min()
    }
}

impl From<f64> for GcdSpeed {
    fn from(base: f64) -> Self {
        GcdSpeed::new(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_speed_is_flat() {
        let s = GcdSpeed::nominal();
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(1000), 1.0);
        assert!(!s.is_faulty());
        assert_eq!(s.first_onset(), None);
    }

    #[test]
    fn slowdown_applies_from_start() {
        let s = GcdSpeed::nominal().with_fault(GcdFaultKind::Slowdown { factor: 1.0 / 3.0 });
        assert!((s.at(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.at(50) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degrade_switches_at_iteration() {
        let s = GcdSpeed::new(0.98).with_fault(GcdFaultKind::DegradeAt { at: 8, factor: 0.5 });
        assert_eq!(s.at(7), 0.98);
        assert_eq!(s.at(8), 0.49);
        assert_eq!(s.first_onset(), Some(8));
    }

    #[test]
    fn thermal_runaway_decays_to_floor() {
        let s = GcdSpeed::nominal().with_fault(GcdFaultKind::ThermalRunaway {
            onset: 4,
            decay: 0.8,
        });
        assert_eq!(s.at(3), 1.0);
        assert!((s.at(5) - 0.8).abs() < 1e-12);
        assert!(s.at(6) < s.at(5));
        assert_eq!(s.at(1000), RUNAWAY_FLOOR);
    }

    #[test]
    fn hard_failure_hangs_but_never_zero() {
        let s = GcdSpeed::nominal().with_fault(GcdFaultKind::Fail { at: 10 });
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), FAILED_SPEED);
        assert!(s.at(10) > 0.0);
    }

    #[test]
    fn faults_compose_multiplicatively() {
        let s = GcdSpeed::nominal()
            .with_fault(GcdFaultKind::Slowdown { factor: 0.5 })
            .with_fault(GcdFaultKind::DegradeAt { at: 2, factor: 0.5 });
        assert_eq!(s.at(1), 0.5);
        assert_eq!(s.at(2), 0.25);
    }

    #[test]
    fn from_f64_matches_new() {
        let s: GcdSpeed = 0.7.into();
        assert_eq!(s.at(3), 0.7);
    }
}
