//! Power and energy modeling — the paper's §VIII outlook, implemented.
//!
//! "Of great interest would be investigating how mixed precision operations
//! effects the energy profile required for various calculations. One would
//! expect that the improvements seen in performance would translate
//! directly to energy utilization." This module prices each kernel class in
//! watts so the drivers can integrate energy over a run and test that
//! hypothesis quantitatively.
//!
//! Numbers are board-level draws in the neighbourhood of the parts'
//! published TDPs (V100: 300 W; MI250X: 560 W per package → 280 W per
//! GCD), split by activity class: dense tensor math pins the power ceiling,
//! memory-bound phases draw less, and stalls idle at the floor.

use crate::device::{GcdModel, Vendor};

/// Board power by activity class for one GCD, in watts.
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Idle / waiting on communication.
    pub idle_w: f64,
    /// Mixed-precision (tensor/matrix core) GEMM.
    pub gemm_mixed_w: f64,
    /// FP32 vector math (GETRF, TRSM).
    pub fp32_w: f64,
    /// FP64 math (the HPL baseline's DGEMM).
    pub fp64_w: f64,
    /// Memory-bound kernels (CAST/TRANS_CAST, packing).
    pub mem_w: f64,
    /// Host CPU share attributable to one rank during IR.
    pub cpu_w: f64,
}

impl PowerModel {
    /// Power preset for a device.
    pub fn for_device(dev: &GcdModel) -> Self {
        match dev.vendor {
            Vendor::Nvidia => PowerModel {
                idle_w: 55.0,
                gemm_mixed_w: 295.0,
                fp32_w: 250.0,
                fp64_w: 260.0,
                mem_w: 180.0,
                cpu_w: 35.0,
            },
            Vendor::Amd => PowerModel {
                idle_w: 45.0,
                gemm_mixed_w: 275.0,
                fp32_w: 230.0,
                fp64_w: 245.0,
                mem_w: 170.0,
                cpu_w: 30.0,
            },
        }
    }
}

/// Integrated per-GCD energy for one run, by activity class (joules).
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyAccount {
    /// Joules in the mixed-precision trailing GEMM.
    pub gemm_j: f64,
    /// Joules in FP32 panel work (GETRF + TRSM).
    pub fp32_j: f64,
    /// Joules in FP64 work (HPL baseline).
    pub fp64_j: f64,
    /// Joules in memory-bound casts.
    pub mem_j: f64,
    /// Joules idling (communication waits, pipeline stalls).
    pub idle_j: f64,
    /// Host-side joules (iterative refinement).
    pub cpu_j: f64,
}

impl EnergyAccount {
    /// Total joules for one GCD.
    pub fn total_j(&self) -> f64 {
        self.gemm_j + self.fp32_j + self.fp64_j + self.mem_j + self.idle_j + self.cpu_j
    }

    /// Energy efficiency in GFLOPS/W given the useful flop count and the
    /// run's wall time (per GCD).
    pub fn gflops_per_watt(&self, flops: f64, runtime: f64) -> f64 {
        let avg_watts = self.total_j() / runtime;
        flops / runtime / 1e9 / avg_watts
    }
}

/// Integrates energy for a run phase profile: each argument is the *busy
/// seconds* in that class; the remainder of `runtime` idles.
#[allow(clippy::too_many_arguments)]
pub fn integrate_energy(
    power: &PowerModel,
    runtime: f64,
    gemm_s: f64,
    fp32_s: f64,
    fp64_s: f64,
    mem_s: f64,
    cpu_s: f64,
) -> EnergyAccount {
    let busy = gemm_s + fp32_s + fp64_s + mem_s + cpu_s;
    let idle_s = (runtime - busy).max(0.0);
    EnergyAccount {
        gemm_j: gemm_s * power.gemm_mixed_w,
        fp32_j: fp32_s * power.fp32_w,
        fp64_j: fp64_s * power.fp64_w,
        mem_j: mem_s * power.mem_w,
        idle_j: idle_s * power.idle_w,
        cpu_j: cpu_s * power.cpu_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_near_tdp() {
        let v = PowerModel::for_device(&GcdModel::v100());
        assert!((v.gemm_mixed_w - 300.0).abs() < 20.0);
        let m = PowerModel::for_device(&GcdModel::mi250x_gcd());
        assert!((m.gemm_mixed_w - 280.0).abs() < 20.0);
        assert!(v.idle_w < v.mem_w && v.mem_w < v.gemm_mixed_w);
    }

    #[test]
    fn integration_accounts_for_idle() {
        let p = PowerModel::for_device(&GcdModel::mi250x_gcd());
        let e = integrate_energy(&p, 10.0, 6.0, 1.0, 0.0, 0.5, 0.5);
        // 2 seconds idle.
        assert!((e.idle_j - 2.0 * p.idle_w).abs() < 1e-9);
        assert!((e.gemm_j - 6.0 * p.gemm_mixed_w).abs() < 1e-9);
        assert!(e.total_j() > 0.0);
    }

    #[test]
    fn busier_run_draws_more_energy_but_finishes() {
        let p = PowerModel::for_device(&GcdModel::v100());
        let packed = integrate_energy(&p, 10.0, 9.0, 0.5, 0.0, 0.5, 0.0);
        let idle_heavy = integrate_energy(&p, 10.0, 2.0, 0.5, 0.0, 0.5, 0.0);
        assert!(packed.total_j() > idle_heavy.total_j());
    }

    #[test]
    fn gflops_per_watt_sane() {
        let p = PowerModel::for_device(&GcdModel::mi250x_gcd());
        // 100 TF useful work over 1s at full tensor power.
        let e = integrate_energy(&p, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0);
        let gpw = e.gflops_per_watt(100e12, 1.0);
        // ~100000 GFLOPS / 275 W ≈ 364 GFLOPS/W.
        assert!((gpw - 363.6).abs() < 1.0, "{gpw}");
    }

    #[test]
    fn overlong_busy_time_clamps_idle() {
        let p = PowerModel::for_device(&GcdModel::v100());
        let e = integrate_energy(&p, 1.0, 2.0, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(e.idle_j, 0.0);
    }
}
