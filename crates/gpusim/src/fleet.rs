//! Per-GCD manufacturing variability and slow-node injection.
//!
//! §VI-B: "the performance of each GPU in such systems can vary due to
//! manufacturing variability and nonuniformity of power/thermal management
//! … We observed approximately 5% maximum variation between GCDs on
//! Frontier" — and a single slow GCD stalls the whole pipeline, which is why
//! the paper scans the fleet with a mini-benchmark and excludes offenders.
//!
//! [`GcdFleet`] assigns every GCD a deterministic speed multiplier drawn
//! from a truncated bell-shaped distribution, optionally injecting
//! distinctly slow outliers so the slow-node-scan experiment has something
//! to find.

use mxp_lcg::Lcg;

/// Speed multipliers for a fleet of GCDs. A multiplier of 1.0 is nominal;
/// kernel times are divided by it (so 0.95 ⇒ 5% slower).
#[derive(Clone, Debug)]
pub struct GcdFleet {
    multipliers: Vec<f64>,
}

impl GcdFleet {
    /// Uniform fleet (all 1.0) — the "tuning disabled" control.
    pub fn uniform(count: usize) -> Self {
        GcdFleet {
            multipliers: vec![1.0; count],
        }
    }

    /// A fleet with explicitly given multipliers — used to fold injected
    /// fault states into an *effective* fleet (e.g. before a scan).
    pub fn from_multipliers(multipliers: Vec<f64>) -> Self {
        assert!(multipliers.iter().all(|&m| m > 0.0));
        GcdFleet { multipliers }
    }

    /// Deterministic fleet with bell-shaped variability.
    ///
    /// `spread` is the maximum fractional slowdown of the in-family tail
    /// (0.05 reproduces the paper's ≈5% observation). `slow_count` GCDs are
    /// additionally degraded by `slow_factor` (e.g. 0.7 = 30% slow), spread
    /// pseudo-randomly through the fleet — the targets of the scan.
    pub fn generate(
        count: usize,
        seed: u64,
        spread: f64,
        slow_count: usize,
        slow_factor: f64,
    ) -> Self {
        assert!((0.0..1.0).contains(&spread));
        assert!(slow_factor > 0.0 && slow_factor <= 1.0);
        let mut g = Lcg::new(seed ^ 0x6c33_7481_9fd0_11c5);
        let mut multipliers: Vec<f64> = (0..count)
            .map(|_| {
                // Sum of three uniforms ≈ bell; map to [1-spread, 1].
                let u = (g.next_unit() + g.next_unit() + g.next_unit()) / 1.5; // [-1, 1)
                1.0 - spread * 0.5 * (1.0 + u).clamp(0.0, 2.0) * 0.5 - spread * 0.25
            })
            .collect();
        // Clamp into [1-spread, 1].
        for m in &mut multipliers {
            *m = m.clamp(1.0 - spread, 1.0);
        }
        let mut slots: Vec<usize> = Vec::with_capacity(slow_count);
        while slots.len() < slow_count.min(count) {
            let pick = (g.next_u64() % count as u64) as usize;
            if !slots.contains(&pick) {
                slots.push(pick);
                multipliers[pick] *= slow_factor;
            }
        }
        GcdFleet { multipliers }
    }

    /// Number of GCDs in the fleet.
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// `true` if the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }

    /// Speed multiplier of GCD `i`.
    pub fn speed(&self, i: usize) -> f64 {
        self.multipliers[i]
    }

    /// The slowest multiplier — the pipeline-stall bound of §VI-B.
    pub fn slowest(&self) -> f64 {
        self.multipliers.iter().copied().fold(1.0, f64::min)
    }

    /// Indices whose measured speed falls below `threshold` × the fleet
    /// median — the decision rule of the slow-node scan mini-benchmark.
    pub fn below_threshold(&self, threshold: f64) -> Vec<usize> {
        let mut sorted = self.multipliers.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        self.multipliers
            .iter()
            .enumerate()
            .filter(|(_, &m)| m < threshold * median)
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns a same-size fleet with the listed GCDs swapped for healthy
    /// spares (multiplier 1.0). This models the operational exclusion
    /// workflow at fixed job size: the flagged nodes are dropped from the
    /// machine file and healthy stand-bys take their grid slots, so the
    /// rerun keeps the same process grid.
    pub fn replacing(&self, exclude: &[usize]) -> GcdFleet {
        GcdFleet {
            multipliers: self
                .multipliers
                .iter()
                .enumerate()
                .map(|(i, &m)| if exclude.contains(&i) { 1.0 } else { m })
                .collect(),
        }
    }

    /// Returns a new fleet with the listed GCDs removed (the paper's
    /// "exclude those nodes when running for top performance").
    pub fn excluding(&self, exclude: &[usize]) -> GcdFleet {
        GcdFleet {
            multipliers: self
                .multipliers
                .iter()
                .enumerate()
                .filter(|(i, _)| !exclude.contains(i))
                .map(|(_, &m)| m)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_all_ones() {
        let f = GcdFleet::uniform(16);
        assert_eq!(f.len(), 16);
        assert!((0..16).all(|i| f.speed(i) == 1.0));
        assert_eq!(f.slowest(), 1.0);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = GcdFleet::generate(100, 7, 0.05, 2, 0.7);
        let b = GcdFleet::generate(100, 7, 0.05, 2, 0.7);
        for i in 0..100 {
            assert_eq!(a.speed(i), b.speed(i));
        }
        let c = GcdFleet::generate(100, 8, 0.05, 2, 0.7);
        assert!((0..100).any(|i| a.speed(i) != c.speed(i)));
    }

    #[test]
    fn spread_respected_without_outliers() {
        let f = GcdFleet::generate(500, 3, 0.05, 0, 1.0);
        for i in 0..500 {
            assert!(
                (0.95..=1.0).contains(&f.speed(i)),
                "gcd {i}: {}",
                f.speed(i)
            );
        }
        // The ~5% spread is actually exercised.
        assert!(f.slowest() < 0.97);
    }

    #[test]
    fn injected_slow_gcds_are_found() {
        let f = GcdFleet::generate(256, 11, 0.05, 3, 0.7);
        let found = f.below_threshold(0.9);
        assert_eq!(found.len(), 3, "found {found:?}");
        for &i in &found {
            assert!(f.speed(i) < 0.75);
        }
    }

    #[test]
    fn excluding_removes_slow_tail() {
        let f = GcdFleet::generate(128, 21, 0.05, 4, 0.6);
        let slow = f.below_threshold(0.9);
        let healthy = f.excluding(&slow);
        assert_eq!(healthy.len(), 128 - slow.len());
        assert!(healthy.slowest() >= 0.95 - 1e-9);
    }

    #[test]
    fn no_false_positives_on_clean_fleet() {
        let f = GcdFleet::generate(256, 5, 0.05, 0, 1.0);
        assert!(f.below_threshold(0.9).is_empty());
    }
}
