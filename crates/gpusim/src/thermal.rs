//! Warm-up and run-sequence variability (Fig. 12, Finding 10).
//!
//! The paper launches six consecutive full HPL-AI runs in one batch job:
//!
//! * **Summit**: the first run is ~20% slower than the rest (cold file
//!   system caches for binaries/libraries, cold clocks); subsequent runs
//!   agree to within 0.12%. A prior mini-benchmark run ("warm up") removes
//!   the penalty.
//! * **Frontier**: the first *two* runs are slightly *faster*; later runs
//!   settle ~0.3-0.5% lower as power/frequency/thermal controls bite, with
//!   0.34% run-to-run discrepancy.
//!
//! [`RunSequence`] converts a run index into a runtime multiplier
//! (>1 ⇒ slower) with a deterministic jitter stream.

use mxp_lcg::Lcg;

/// Which machine's run-sequence behaviour to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmupProfile {
    /// Summit: cold first run, then stable.
    Summit,
    /// Frontier: fast first two runs, then a small thermal sag.
    Frontier,
}

/// Deterministic run-sequence model: multiplier per consecutive run.
#[derive(Clone, Debug)]
pub struct RunSequence {
    profile: WarmupProfile,
    /// Whether a warm-up mini-benchmark ran before the first full run.
    warmed_up: bool,
    seed: u64,
}

impl RunSequence {
    /// Creates a sequence model for a batch job on the given system.
    pub fn new(profile: WarmupProfile, warmed_up: bool, seed: u64) -> Self {
        RunSequence {
            profile,
            warmed_up,
            seed,
        }
    }

    /// Runtime multiplier for consecutive run `run_idx` (0-based): total
    /// wall time is nominal time × multiplier.
    pub fn runtime_multiplier(&self, run_idx: usize) -> f64 {
        let mut g = Lcg::new(
            self.seed
                .wrapping_add(run_idx as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let jitter = g.next_unit(); // [-0.5, 0.5)
        match self.profile {
            WarmupProfile::Summit => {
                if run_idx == 0 && !self.warmed_up {
                    // "the first whole run is 20% slower": all kernels and
                    // communication, the entire run.
                    1.25 + 0.01 * jitter
                } else {
                    // "cap at a 0.12% performance discrepancy"
                    1.0 + 0.0012 * jitter
                }
            }
            WarmupProfile::Frontier => {
                if run_idx < 2 {
                    // First two runs come in hot (boost clocks).
                    0.995 + 0.001 * jitter
                } else {
                    // Later runs sag slightly and wobble by ~0.34%.
                    1.004 + 0.0034 * jitter
                }
            }
        }
    }

    /// The performance (inverse-time) multiplier, convenient for plotting
    /// GFLOPS series like Fig. 12.
    pub fn perf_multiplier(&self, run_idx: usize) -> f64 {
        1.0 / self.runtime_multiplier(run_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_cold_first_run() {
        let rs = RunSequence::new(WarmupProfile::Summit, false, 1);
        let first = rs.runtime_multiplier(0);
        assert!(first > 1.19, "first run must be ~20% slower, got {first}");
        for run in 1..6 {
            let m = rs.runtime_multiplier(run);
            assert!((m - 1.0).abs() < 0.002, "run {run}: {m}");
        }
    }

    #[test]
    fn summit_warmup_removes_penalty() {
        let rs = RunSequence::new(WarmupProfile::Summit, true, 1);
        assert!((rs.runtime_multiplier(0) - 1.0).abs() < 0.002);
    }

    #[test]
    fn frontier_first_two_runs_fast() {
        let rs = RunSequence::new(WarmupProfile::Frontier, false, 2);
        assert!(rs.runtime_multiplier(0) < 1.0);
        assert!(rs.runtime_multiplier(1) < 1.0);
        for run in 2..6 {
            let m = rs.runtime_multiplier(run);
            assert!(m > 1.0, "run {run}: {m}");
            assert!((m - 1.004).abs() < 0.002);
        }
    }

    #[test]
    fn deterministic() {
        let a = RunSequence::new(WarmupProfile::Frontier, false, 42);
        let b = RunSequence::new(WarmupProfile::Frontier, false, 42);
        for run in 0..6 {
            assert_eq!(a.runtime_multiplier(run), b.runtime_multiplier(run));
        }
    }

    #[test]
    fn perf_is_inverse_time() {
        let rs = RunSequence::new(WarmupProfile::Summit, false, 3);
        for run in 0..4 {
            let p = rs.perf_multiplier(run) * rs.runtime_multiplier(run);
            assert!((p - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fig12_shape() {
        // Six consecutive runs: Summit dips then flattens; Frontier starts
        // high then settles lower — the qualitative content of Fig. 12.
        let summit = RunSequence::new(WarmupProfile::Summit, false, 9);
        let s: Vec<f64> = (0..6).map(|r| summit.perf_multiplier(r)).collect();
        assert!(s[0] < 0.85 * s[1]);
        let frontier = RunSequence::new(WarmupProfile::Frontier, false, 9);
        let f: Vec<f64> = (0..6).map(|r| frontier.perf_multiplier(r)).collect();
        assert!(f[0] > f[3] && f[1] > f[4]);
    }
}
