//! The cross-platform BLAS shim (Table II, §III-B).
//!
//! The paper builds "a thin shim layer using a macro approach" because HIP
//! does not paper over every vendor API difference; the concrete example
//! given is GETRF, where cuSOLVER demands a separate
//! `cusolverDnSgetrf_bufferSize` workspace query while rocSOLVER factors in
//! a single call. This module reproduces both the **mapping** (the strings
//! of Table II, printed by the `table2` harness) and the **behavioural
//! quirk**: on the NVIDIA stack, calling [`BlasShim::sgetrf`] without first
//! sizing the [`Workspace`] is an API misuse error.
//!
//! Functional dispatch lands on `mxp-blas`, which plays the role of the
//! vendor library's math.

use crate::device::Vendor;
use mxp_blas::{Diag, GetrfError, Side, Trans, Uplo};
use mxp_precision::F16;

/// Device workspace handle for factorization calls (the cuSOLVER pattern).
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    sized_for: Option<usize>,
}

/// Errors surfaced by the shim layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShimError {
    /// cuSOLVER-style API misuse: GETRF called before the workspace query.
    WorkspaceNotSized {
        /// Matrix order the factorization was attempted at.
        n: usize,
    },
    /// The underlying factorization failed.
    Factorization(GetrfError),
}

impl core::fmt::Display for ShimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShimError::WorkspaceNotSized { n } => write!(
                f,
                "cusolverDnSgetrf called for n={n} without cusolverDnSgetrf_bufferSize"
            ),
            ShimError::Factorization(e) => write!(f, "factorization failed: {e}"),
        }
    }
}

impl std::error::Error for ShimError {}

/// The vendor-dispatch layer: one object per GPU software stack.
#[derive(Clone, Copy, Debug)]
pub struct BlasShim {
    /// Which vendor stack this shim targets.
    pub vendor: Vendor,
}

impl BlasShim {
    /// Shim for the given vendor.
    pub fn new(vendor: Vendor) -> Self {
        BlasShim { vendor }
    }

    /// Vendor entry point used for the mixed-precision GEMM (Table II).
    pub fn gemm_name(&self) -> &'static str {
        match self.vendor {
            Vendor::Nvidia => "cublasSgemmEx",
            Vendor::Amd => "rocblas_gemm_ex",
        }
    }

    /// Vendor entry point used for TRSM (Table II).
    pub fn trsm_name(&self) -> &'static str {
        match self.vendor {
            Vendor::Nvidia => "cublasStrsm",
            Vendor::Amd => "rocblas_strsm",
        }
    }

    /// Vendor entry point used for GETRF (Table II).
    pub fn getrf_name(&self) -> &'static str {
        match self.vendor {
            Vendor::Nvidia => "cusolverDnSgetrf",
            Vendor::Amd => "rocsolver_sgetrf",
        }
    }

    /// Library used for the CPU-side TRSV of iterative refinement
    /// (Table II: openBLAS on both systems).
    pub fn trsv_name(&self) -> &'static str {
        "openBLAS"
    }

    /// Whether this stack requires the separate workspace-size query before
    /// GETRF (the §III-B porting example).
    pub fn getrf_needs_workspace_query(&self) -> bool {
        self.vendor == Vendor::Nvidia
    }

    /// `cusolverDnSgetrf_bufferSize` analogue: sizes the workspace for an
    /// order-`n` factorization. A no-op (but harmless) on the AMD stack.
    pub fn sgetrf_buffer_size(&self, n: usize, ws: &mut Workspace) {
        ws.sized_for = Some(n);
    }

    /// Unpivoted FP32 GETRF through the vendor library.
    ///
    /// On the NVIDIA stack the workspace must have been sized for at least
    /// this `n` first; rocSOLVER "supports a single call" (§III-B) and
    /// ignores the workspace.
    pub fn sgetrf(
        &self,
        n: usize,
        a: &mut [f32],
        lda: usize,
        ws: &mut Workspace,
    ) -> Result<(), ShimError> {
        if self.getrf_needs_workspace_query() {
            match ws.sized_for {
                Some(sized) if sized >= n => {}
                _ => return Err(ShimError::WorkspaceNotSized { n }),
            }
        }
        mxp_blas::getrf_nopiv(n, a, lda).map_err(ShimError::Factorization)
    }

    /// FP32 TRSM through the vendor library.
    #[allow(clippy::too_many_arguments)]
    pub fn strsm(
        &self,
        side: Side,
        uplo: Uplo,
        diag: Diag,
        m: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        lda: usize,
        b: &mut [f32],
        ldb: usize,
    ) {
        mxp_blas::trsm(side, uplo, diag, m, n, alpha, a, lda, b, ldb);
    }

    /// Mixed-precision GEMM (f16 inputs, f32 accumulate) through the vendor
    /// library.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_ex(
        &self,
        transa: Trans,
        transb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[F16],
        lda: usize,
        b: &[F16],
        ldb: usize,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
    ) {
        mxp_blas::gemm_mixed(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominant(n: usize) -> Vec<f32> {
        let mut a = vec![0.0f32; n * n];
        let mut s = 77u64;
        for j in 0..n {
            for i in 0..n {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                a[j * n + i] = if i == j {
                    n as f32
                } else {
                    ((s >> 11) as f64 / 9.007199254740992e15) as f32 - 0.5
                };
            }
        }
        a
    }

    #[test]
    fn table2_mapping() {
        let cuda = BlasShim::new(Vendor::Nvidia);
        assert_eq!(cuda.gemm_name(), "cublasSgemmEx");
        assert_eq!(cuda.trsm_name(), "cublasStrsm");
        assert_eq!(cuda.getrf_name(), "cusolverDnSgetrf");
        assert_eq!(cuda.trsv_name(), "openBLAS");
        let rocm = BlasShim::new(Vendor::Amd);
        assert_eq!(rocm.gemm_name(), "rocblas_gemm_ex");
        assert_eq!(rocm.trsm_name(), "rocblas_strsm");
        assert_eq!(rocm.getrf_name(), "rocsolver_sgetrf");
        assert_eq!(rocm.trsv_name(), "openBLAS");
    }

    #[test]
    fn cusolver_requires_workspace_query() {
        let cuda = BlasShim::new(Vendor::Nvidia);
        let mut a = dominant(8);
        let mut ws = Workspace::default();
        // Without the bufferSize call: API misuse.
        let err = cuda.sgetrf(8, &mut a, 8, &mut ws);
        assert_eq!(err, Err(ShimError::WorkspaceNotSized { n: 8 }));
        // After the query it succeeds.
        cuda.sgetrf_buffer_size(8, &mut ws);
        assert!(cuda.sgetrf(8, &mut a, 8, &mut ws).is_ok());
    }

    #[test]
    fn workspace_too_small_is_rejected() {
        let cuda = BlasShim::new(Vendor::Nvidia);
        let mut a = dominant(16);
        let mut ws = Workspace::default();
        cuda.sgetrf_buffer_size(8, &mut ws);
        assert!(cuda.sgetrf(16, &mut a, 16, &mut ws).is_err());
    }

    #[test]
    fn rocsolver_is_single_call() {
        let rocm = BlasShim::new(Vendor::Amd);
        let mut a = dominant(8);
        let mut ws = Workspace::default();
        assert!(rocm.sgetrf(8, &mut a, 8, &mut ws).is_ok());
    }

    #[test]
    fn both_vendors_produce_identical_math() {
        // The shim dispatches to the same kernels, so results agree exactly
        // — the cross-platform promise of §III-B.
        let mut a1 = dominant(32);
        let mut a2 = a1.clone();
        let cuda = BlasShim::new(Vendor::Nvidia);
        let rocm = BlasShim::new(Vendor::Amd);
        let mut ws = Workspace::default();
        cuda.sgetrf_buffer_size(32, &mut ws);
        cuda.sgetrf(32, &mut a1, 32, &mut ws).unwrap();
        rocm.sgetrf(32, &mut a2, 32, &mut ws).unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn shim_gemm_and_trsm_dispatch() {
        let shim = BlasShim::new(Vendor::Amd);
        // TRSM: L = [[2,0],[1,1]] nonunit, B = [2,2] -> [1,1]
        let l = [2.0f32, 1.0, 0.0, 1.0];
        let mut b = [2.0f32, 2.0];
        shim.strsm(
            Side::Left,
            Uplo::Lower,
            Diag::NonUnit,
            2,
            1,
            1.0,
            &l,
            2,
            &mut b,
            2,
        );
        assert_eq!(b, [1.0, 1.0]);
        // GEMM: C -= L*U with identity-ish data.
        let a16 = [F16::ONE, F16::ZERO, F16::ZERO, F16::ONE];
        let b16 = [F16::ONE, F16::ZERO, F16::ZERO, F16::ONE];
        let mut c = [5.0f32, 0.0, 0.0, 5.0];
        shim.gemm_ex(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            -1.0,
            &a16,
            2,
            &b16,
            2,
            1.0,
            &mut c,
            2,
        );
        assert_eq!(c, [4.0, 0.0, 0.0, 4.0]);
    }
}
