//! # mxp-gpusim — simulated Summit/Frontier accelerators
//!
//! Stand-in for the V100 GPUs and MI250X GCDs (plus their vendor BLAS
//! libraries) that the paper runs on. Three concerns live here:
//!
//! 1. **Kernel-time surfaces** ([`GcdModel`]) — analytic flop-rate models
//!    `rate(kernel, m, n, k, lda)` calibrated to Table I peaks and to the
//!    *shapes* the paper measures: the rocBLAS GEMM heat-map non-uniformity
//!    (Fig. 3), the per-iteration GEMM/GETRF/TRSM curves (Figs. 5/6), the
//!    LDA = 122880 performance cliff (Fig. 7), and the under-performing
//!    `rocsolver_sgetrf` on the critical path (Finding 3).
//! 2. **Fleet effects** — per-GCD manufacturing variability (§VI-B "Identify
//!    slow nodes", ≈5% max spread) and the warm-up / thermal run-sequence
//!    behaviour of Fig. 12 ([`fleet`], [`thermal`]).
//! 3. **Power/energy** ([`power`]) — per-activity-class board power, so
//!    drivers can integrate the energy profile of a run (the paper's §VIII
//!    outlook, implemented).
//! 4. **The cross-platform shim** ([`shim`]) — Table II's mapping from BLAS
//!    operations to vendor library entry points, including the API quirks
//!    (cuSOLVER's separate `…_bufferSize` workspace query) that forced the
//!    paper's macro-based shim; functional dispatch lands on `mxp-blas`.
//!
//! Times are seconds; rates are FLOP/s; sizes are elements unless a name
//! says bytes.

#![deny(missing_docs)]

pub mod device;
pub mod fault;
pub mod fleet;
pub mod power;
pub mod shim;
pub mod thermal;

pub use device::{gemm_heatmap, kernel_curves, GcdModel, KernelRates, Vendor};
pub use fault::{GcdFault, GcdFaultKind, GcdSpeed};
pub use fleet::GcdFleet;
pub use power::{integrate_energy, EnergyAccount, PowerModel};
pub use shim::{BlasShim, Workspace};
pub use thermal::RunSequence;
