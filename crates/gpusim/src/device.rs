//! Per-GCD device models: kernel-time surfaces calibrated to the paper.
//!
//! ## Calibration notes
//!
//! Peaks come from Table I (per-node FP16: 750 TF Summit / 1192 TF Frontier,
//! divided by 6 V100s / 8 GCDs). The *shapes* of the efficiency surfaces are
//! fit to the qualitative structure of Figs. 3, 5, 6 and 7:
//!
//! * saturation in `k` (= block size `B`): `k/(k + k_half)` — `k_half` is
//!   4× larger for rocBLAS, which is why the optimal block size moves from
//!   B = 768/1024 on V100 to B = 3072 on MI250X (§V-C);
//! * saturation in output size: `mn/(mn + s_half²)` — rates climb with the
//!   trailing-matrix size along the x-axes of Figs. 5/6;
//! * rocBLAS tile-quantization stripes (Fig. 3): off-multiple `m`/`k` sizes
//!   lose a fixed fraction (Finding 2/3: "rocBLAS will require additional
//!   tuning of GEMM kernel parameters to achieve more uniform performance");
//! * the LDA cliff (Fig. 7): leading dimensions divisible by a large power
//!   of two alias HBM channels; `LDA = 122880 = 2048·60` falls off the
//!   cliff while `119808` does not, reproducing the paper's `N_L` choice;
//! * `rocsolver_sgetrf` under-performs its cuSOLVER counterpart
//!   (Finding 3), putting extra pressure on the critical path.

/// GPU software stack vendor — selects library-specific behaviour in both
/// the timing surfaces and the shim layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// NVIDIA CUDA stack (cuBLAS / cuSOLVER).
    Nvidia,
    /// AMD ROCm stack (rocBLAS / rocSOLVER).
    Amd,
}

/// Analytic performance model of one GCD (a V100 GPU or half an MI250X).
#[derive(Clone, Copy, Debug)]
pub struct GcdModel {
    /// Human-readable device name.
    pub name: &'static str,
    /// Library stack.
    pub vendor: Vendor,
    /// Peak FP16-input/FP32-accumulate GEMM rate (tensor/matrix cores), FLOP/s.
    pub fp16_peak: f64,
    /// Peak FP32 vector rate, FLOP/s.
    pub fp32_peak: f64,
    /// Peak FP64 rate, FLOP/s.
    pub fp64_peak: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Device memory bandwidth in bytes/s (drives cast kernels).
    pub mem_bw: f64,
    /// Kernel launch overhead per call, seconds.
    pub launch_overhead: f64,
    /// GEMM k-direction half-saturation constant.
    pub gemm_k_half: f64,
    /// GEMM output-size half-saturation constant (elements per side).
    pub gemm_s_half: f64,
    /// Base GEMM efficiency at full saturation (library quality).
    pub gemm_base_eff: f64,
    /// GETRF efficiency factor relative to fp32 peak at saturation.
    pub getrf_eff: f64,
    /// GETRF half-saturation block size.
    pub getrf_b_half: f64,
    /// TRSM efficiency factor relative to fp32 peak at saturation.
    pub trsm_eff: f64,
}

impl GcdModel {
    /// Summit's NVIDIA V100 (one GPU = one GCD in the paper's accounting).
    pub fn v100() -> Self {
        GcdModel {
            name: "NVIDIA V100",
            vendor: Vendor::Nvidia,
            fp16_peak: 125.0e12,
            fp32_peak: 15.7e12,
            fp64_peak: 7.8e12,
            mem_bytes: 16 * (1 << 30),
            mem_bw: 900.0e9,
            launch_overhead: 8.0e-6,
            gemm_k_half: 256.0,
            gemm_s_half: 1536.0,
            gemm_base_eff: 0.88,
            getrf_eff: 0.50,
            getrf_b_half: 256.0,
            trsm_eff: 0.75,
        }
    }

    /// Frontier's AMD MI250X GCD (half an MI250X package; Table I node
    /// FP16 1192 TF / 8 GCDs).
    pub fn mi250x_gcd() -> Self {
        GcdModel {
            name: "AMD MI250X GCD",
            vendor: Vendor::Amd,
            fp16_peak: 149.0e12,
            fp32_peak: 23.9e12,
            fp64_peak: 27.25e12,
            mem_bytes: 64 * (1 << 30),
            mem_bw: 1.6e12,
            launch_overhead: 12.0e-6,
            gemm_k_half: 1500.0,
            gemm_s_half: 2560.0,
            gemm_base_eff: 0.92,
            getrf_eff: 0.22, // Finding 3: rocsolver_getrf under-performs
            getrf_b_half: 512.0,
            trsm_eff: 0.75,
        }
    }

    /// Mixed-precision GEMM flop rate for `C(m×n) += A(m×k)·B(k×n)` with the
    /// local matrix stored at leading dimension `lda` (FLOP/s).
    pub fn gemm_mixed_rate(&self, m: usize, n: usize, k: usize, lda: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return self.fp16_peak;
        }
        let k_eff = k as f64 / (k as f64 + self.gemm_k_half);
        let mn = m as f64 * n as f64;
        let s_eff = mn / (mn + self.gemm_s_half * self.gemm_s_half);
        self.fp16_peak
            * self.gemm_base_eff
            * k_eff
            * s_eff
            * self.quantization(m, k)
            * self.lda_penalty(lda)
    }

    /// Tile-quantization stripes of the vendor GEMM (Fig. 3 heat map).
    fn quantization(&self, m: usize, k: usize) -> f64 {
        match self.vendor {
            Vendor::Nvidia => {
                let mut f = 1.0;
                if !m.is_multiple_of(64) {
                    f *= 0.93;
                }
                if !k.is_multiple_of(64) {
                    f *= 0.95;
                }
                f
            }
            Vendor::Amd => {
                // Fig. 3: "highest performance is not uniformly achievable";
                // off-multiple sizes fall off visible stripes.
                let mut f = 1.0;
                if !k.is_multiple_of(512) {
                    f *= 0.78;
                }
                if !m.is_multiple_of(256) {
                    f *= 0.85;
                }
                f
            }
        }
    }

    /// Leading-dimension penalty (Fig. 7): power-of-two-ish strides alias
    /// memory channels on the MI250X. `122880 = 2048·60` hits the cliff;
    /// `119808` does not.
    pub fn lda_penalty(&self, lda: usize) -> f64 {
        match self.vendor {
            Vendor::Nvidia => 1.0,
            Vendor::Amd => {
                if lda > 0 && lda.is_multiple_of(2048) {
                    0.60
                } else {
                    1.0
                }
            }
        }
    }

    /// Time for the mixed GEMM of the trailing update (seconds).
    pub fn gemm_mixed_time(&self, m: usize, n: usize, k: usize, lda: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return self.launch_overhead;
        }
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        self.launch_overhead + flops / self.gemm_mixed_rate(m, n, k, lda)
    }

    /// FP32 GETRF rate on a `b × b` diagonal block (FLOP/s).
    pub fn getrf_rate(&self, b: usize) -> f64 {
        let b = b as f64;
        self.fp32_peak * self.getrf_eff * b / (b + self.getrf_b_half)
    }

    /// Time for the diagonal-block factorization (`(2/3)·b³` flops).
    pub fn getrf_time(&self, b: usize) -> f64 {
        if b == 0 {
            return 0.0;
        }
        let flops = 2.0 / 3.0 * (b as f64).powi(3);
        self.launch_overhead + flops / self.getrf_rate(b)
    }

    /// FP32 TRSM rate for a `b × b` triangle against `n` right-hand sides.
    pub fn trsm_rate(&self, b: usize, n: usize) -> f64 {
        let bb = b as f64;
        let nn = n as f64;
        let b_eff = bb / (bb + 64.0);
        let n_eff = nn / (nn + 512.0);
        self.fp32_peak * self.trsm_eff * b_eff * n_eff
    }

    /// Time for the panel triangular solve (`b² · n` flops).
    pub fn trsm_time(&self, b: usize, n: usize) -> f64 {
        if b == 0 || n == 0 {
            return 0.0;
        }
        let flops = (b as f64) * (b as f64) * n as f64;
        self.launch_overhead + flops / self.trsm_rate(b, n)
    }

    /// Time for CAST / TRANS_CAST of `elems` f32 elements to f16: memory
    /// bound (read 4 B, write 2 B per element).
    pub fn cast_time(&self, elems: usize) -> f64 {
        self.launch_overhead + 6.0 * elems as f64 / self.mem_bw
    }

    /// Time to copy `bytes` between host and device (used once at setup and
    /// once before IR; §III-C runs the whole factorization device-resident).
    pub fn h2d_time(&self, bytes: u64) -> f64 {
        // PCIe gen4-ish / Infinity Fabric host link, both ≈ 50 GB/s per GCD
        // at the fidelity this needs.
        20.0e-6 + bytes as f64 / 50.0e9
    }

    /// Whether a single-precision local matrix of side `n_l` (stored at
    /// `lda = n_l`) plus factorization buffers fits in device memory.
    ///
    /// Budget mirrors §V-A: the FP32 matrix dominates; diagonal block, FP16
    /// panels and look-ahead buffers add `~3·B·n_l·2` bytes plus the `B²`
    /// diagonal tile.
    pub fn fits_local_matrix(&self, n_l: usize, b: usize) -> bool {
        let matrix = 4 * n_l as u64 * n_l as u64;
        let panels = 2 * (3 * b as u64 * n_l as u64) + 4 * (b as u64 * b as u64);
        matrix + panels <= self.mem_bytes
    }

    /// Largest `N_L` (multiple of `b`) whose working set fits on the GCD.
    pub fn max_local_n(&self, b: usize) -> usize {
        let mut lo = 0usize;
        let mut hi = 1usize << 20;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.fits_local_matrix(mid, b) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo - lo % b.max(1)
    }
}

/// Samples the mixed-GEMM rate surface over a grid of output sizes and
/// reduction depths — the data behind the Fig. 3 heat map. Returns
/// `rates[mi][ki]` in FLOP/s for `C(m×m) += A(m×k)·B(k×m)` at fixed `lda`.
pub fn gemm_heatmap(dev: &GcdModel, mns: &[usize], ks: &[usize], lda: usize) -> Vec<Vec<f64>> {
    mns.iter()
        .map(|&mn| {
            ks.iter()
                .map(|&k| dev.gemm_mixed_rate(mn, mn, k, lda))
                .collect()
        })
        .collect()
}

/// One point of the Fig. 5/6 per-iteration kernel-rate curves: rates of the
/// three factorization kernels at a given trailing size and block size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelRates {
    /// Trailing matrix dimension the rates were sampled at.
    pub trailing: usize,
    /// Mixed-precision GEMM rate, FLOP/s.
    pub gemm: f64,
    /// GETRF rate, FLOP/s.
    pub getrf: f64,
    /// TRSM rate, FLOP/s.
    pub trsm: f64,
}

/// Samples the per-iteration kernel rates along a factorization of local
/// size `n_l` with block size `b` (Figs. 5/6), at `samples` evenly spaced
/// iterations.
pub fn kernel_curves(dev: &GcdModel, n_l: usize, b: usize, samples: usize) -> Vec<KernelRates> {
    let n_b = n_l / b;
    (0..samples)
        .filter_map(|s| {
            let k = s * n_b / samples.max(1);
            let trailing = n_l.checked_sub((k + 1) * b)?;
            if trailing == 0 {
                return None;
            }
            Some(KernelRates {
                trailing,
                gemm: dev.gemm_mixed_rate(trailing, trailing, b, n_l),
                getrf: dev.getrf_rate(b),
                trsm: dev.trsm_rate(b, trailing),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_peaks() {
        let v = GcdModel::v100();
        let m = GcdModel::mi250x_gcd();
        // Node-level FP16: 6 × 125 = 750 TF (Summit), 8 × 149 = 1192 TF
        // (Frontier) per Table I.
        assert!((6.0 * v.fp16_peak - 750e12).abs() < 1e9);
        assert!((8.0 * m.fp16_peak - 1192e12).abs() < 1e9);
        // Frontier node is 1.58x Summit node in FP16 (§III-A).
        assert!(((8.0 * m.fp16_peak) / (6.0 * v.fp16_peak) - 1.589) < 0.01);
        assert_eq!(v.vendor, Vendor::Nvidia);
        assert_eq!(m.vendor, Vendor::Amd);
    }

    #[test]
    fn gemm_rate_increases_with_k() {
        let m = GcdModel::mi250x_gcd();
        let r1 = m.gemm_mixed_rate(8192, 8192, 1024, 119808);
        let r2 = m.gemm_mixed_rate(8192, 8192, 3072, 119808);
        assert!(r2 > r1, "B=3072 must beat B=1024 at kernel level");
    }

    #[test]
    fn gemm_rate_increases_with_trailing_size() {
        let v = GcdModel::v100();
        let small = v.gemm_mixed_rate(1024, 1024, 768, 61440);
        let large = v.gemm_mixed_rate(32768, 32768, 768, 61440);
        assert!(large > 2.0 * small);
    }

    #[test]
    fn rates_never_exceed_peak() {
        let v = GcdModel::v100();
        let m = GcdModel::mi250x_gcd();
        for &dev in &[v, m] {
            for &k in &[256usize, 768, 1024, 3072] {
                for &s in &[1024usize, 8192, 61440] {
                    assert!(dev.gemm_mixed_rate(s, s, k, s) <= dev.fp16_peak);
                    assert!(dev.getrf_rate(k) <= dev.fp32_peak);
                    assert!(dev.trsm_rate(k, s) <= dev.fp32_peak);
                }
            }
        }
    }

    #[test]
    fn lda_cliff_matches_fig7() {
        let m = GcdModel::mi250x_gcd();
        // The paper's exact comparison: N_L = 119808 outperforms 122880.
        let good = m.gemm_mixed_rate(16384, 16384, 3072, 119808);
        let bad = m.gemm_mixed_rate(16384, 16384, 3072, 122880);
        assert!(good > 1.3 * bad, "good {good} vs bad {bad}");
        // No such cliff on the NVIDIA stack.
        let v = GcdModel::v100();
        assert_eq!(
            v.gemm_mixed_rate(16384, 16384, 768, 122880),
            v.gemm_mixed_rate(16384, 16384, 768, 122881)
        );
    }

    #[test]
    fn rocblas_quantization_stripes() {
        let m = GcdModel::mi250x_gcd();
        let aligned = m.gemm_mixed_rate(8192, 8192, 3072, 119808);
        let misaligned_k = m.gemm_mixed_rate(8192, 8192, 3072 - 64, 119808);
        // The penalty overwhelms the tiny k decrease.
        assert!(aligned > 1.1 * misaligned_k);
    }

    #[test]
    fn rocsolver_getrf_is_slow_finding3() {
        let v = GcdModel::v100();
        let m = GcdModel::mi250x_gcd();
        // Despite higher fp32 peak, the MI250X GETRF rate at its own optimal
        // B=3072 is below the V100's at B=768 relative to peak.
        let v_rel = v.getrf_rate(768) / v.fp32_peak;
        let m_rel = m.getrf_rate(3072) / m.fp32_peak;
        assert!(m_rel < v_rel);
    }

    #[test]
    fn getrf_below_5pct_of_gemm_at_chosen_b() {
        // §V-C tuning rule: "limit the runtime of GETRF to less than 5% of
        // the GEMM" at the paper's chosen B values, full local matrix.
        let v = GcdModel::v100();
        let nl = 61440;
        let ratio = v.getrf_time(768) / v.gemm_mixed_time(nl, nl, 768, nl);
        assert!(ratio < 0.05, "V100 ratio {ratio}");
        let m = GcdModel::mi250x_gcd();
        let nl = 119808;
        let ratio = m.getrf_time(3072) / m.gemm_mixed_time(nl, nl, 3072, nl);
        assert!(ratio < 0.05, "MI250X ratio {ratio}");
    }

    #[test]
    fn memory_capacity_matches_section5a() {
        let v = GcdModel::v100();
        // N_L = 61440 is ~14 GB of fp32 and fits on the 16 GB V100 with
        // panel buffers at B = 768.
        assert!(v.fits_local_matrix(61440, 768));
        assert!(!v.fits_local_matrix(65536, 768));
        let m = GcdModel::mi250x_gcd();
        // N_L = 119808 (~53 GB) fits the 64 GB GCD at B = 3072.
        assert!(m.fits_local_matrix(119808, 3072));
        assert!(m.fits_local_matrix(122880, 3072));
        assert!(!m.fits_local_matrix(131072, 3072));
    }

    #[test]
    fn max_local_n_is_consistent() {
        let m = GcdModel::mi250x_gcd();
        let nl = m.max_local_n(3072);
        assert!(m.fits_local_matrix(nl, 3072));
        assert!(!m.fits_local_matrix(nl + 3072, 3072));
        assert_eq!(nl % 3072, 0);
        assert!(nl >= 119808, "paper's N_L must fit; got {nl}");
    }

    #[test]
    fn cast_time_is_memory_bound() {
        let v = GcdModel::v100();
        let t = v.cast_time(61440 * 768);
        // 6 bytes/element over 900 GB/s.
        let expect = 8e-6 + 6.0 * (61440.0 * 768.0) / 900e9;
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn heatmap_shape_and_saturation() {
        let dev = GcdModel::mi250x_gcd();
        let mns = [2048usize, 8192, 32768];
        let ks = [512usize, 1024, 3072];
        let hm = gemm_heatmap(&dev, &mns, &ks, 119808);
        assert_eq!(hm.len(), 3);
        assert!(hm.iter().all(|row| row.len() == 3));
        // Rates rise along both axes (Fig. 3's overall gradient).
        for row in &hm {
            assert!(row[2] > row[0]);
        }
        for (hi, lo) in hm[2].iter().zip(&hm[0]) {
            assert!(hi > lo);
        }
    }

    #[test]
    fn kernel_curves_match_fig5_shape() {
        let dev = GcdModel::v100();
        let curves = kernel_curves(&dev, 61440, 768, 10);
        assert!(!curves.is_empty());
        // Trailing sizes decrease along the run; GEMM rate decreases with
        // them; GETRF is constant in the trailing size.
        for w in curves.windows(2) {
            assert!(w[0].trailing > w[1].trailing);
            assert!(w[0].gemm >= w[1].gemm);
            assert_eq!(w[0].getrf, w[1].getrf);
        }
    }

    #[test]
    fn degenerate_sizes() {
        let v = GcdModel::v100();
        assert_eq!(v.getrf_time(0), 0.0);
        assert_eq!(v.trsm_time(0, 100), 0.0);
        assert_eq!(v.trsm_time(100, 0), 0.0);
        assert!(v.gemm_mixed_time(0, 5, 5, 10) == v.launch_overhead);
    }
}
