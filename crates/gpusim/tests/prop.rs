//! Property-based tests of the device models: physical sanity for any
//! kernel shape the driver can throw at them.

use mxp_gpusim::{GcdFleet, GcdModel};
use proptest::prelude::*;

fn devices() -> Vec<GcdModel> {
    vec![GcdModel::v100(), GcdModel::mi250x_gcd()]
}

proptest! {
    /// Rates never exceed the relevant peak, for any shape.
    #[test]
    fn rates_bounded_by_peak(
        m in 1usize..200_000,
        n in 1usize..200_000,
        k in 1usize..8192,
        lda in 1usize..200_000,
    ) {
        for dev in devices() {
            prop_assert!(dev.gemm_mixed_rate(m, n, k, lda) <= dev.fp16_peak);
            prop_assert!(dev.getrf_rate(k) <= dev.fp32_peak);
            prop_assert!(dev.trsm_rate(k, n) <= dev.fp32_peak);
        }
    }

    /// Kernel times are positive and monotone in the work: growing any
    /// dimension never reduces the time.
    #[test]
    fn times_monotone(
        m in 64usize..32_768,
        n in 64usize..32_768,
        k in 64usize..4096,
    ) {
        for dev in devices() {
            let lda = 119_807; // off every penalty stripe
            let t = dev.gemm_mixed_time(m, n, k, lda);
            prop_assert!(t > 0.0);
            prop_assert!(dev.gemm_mixed_time(2 * m, n, k, lda) >= t);
            prop_assert!(dev.gemm_mixed_time(m, 2 * n, k, lda) >= t);
            // k both adds flops and improves the rate; flops win.
            prop_assert!(dev.gemm_mixed_time(m, n, 2 * k, lda) > t);
            prop_assert!(dev.getrf_time(2 * k) > dev.getrf_time(k));
            prop_assert!(dev.trsm_time(k, 2 * n) > dev.trsm_time(k, n));
            prop_assert!(dev.cast_time(2 * m * k) > dev.cast_time(m * k));
        }
    }

    /// The LDA penalty only ever reduces the rate, and only on the AMD
    /// stack (Fig. 7 is a rocBLAS artifact).
    #[test]
    fn lda_penalty_direction(lda in 1usize..300_000) {
        let v = GcdModel::v100();
        prop_assert_eq!(v.lda_penalty(lda), 1.0);
        let m = GcdModel::mi250x_gcd();
        let p = m.lda_penalty(lda);
        prop_assert!(p <= 1.0 && p > 0.0);
        if !lda.is_multiple_of(2048) {
            prop_assert_eq!(p, 1.0);
        }
    }

    /// Memory-capacity check is monotone: if N_L fits, anything smaller
    /// fits too.
    #[test]
    fn memory_fit_monotone(n_l in 1024usize..150_000, b in 256usize..4096) {
        for dev in devices() {
            if dev.fits_local_matrix(n_l, b) {
                prop_assert!(dev.fits_local_matrix(n_l / 2, b));
            }
        }
    }

    /// Fleet generation respects its contract for any parameters: spread
    /// bounds hold and exactly `slow` outliers degrade further.
    #[test]
    fn fleet_contract(count in 4usize..200, seed: u64, slow in 0usize..4) {
        let spread = 0.05;
        let factor = 0.6;
        let fleet = GcdFleet::generate(count, seed, spread, slow, factor);
        prop_assert_eq!(fleet.len(), count);
        let below: Vec<usize> = (0..count)
            .filter(|&i| fleet.speed(i) < 1.0 - spread - 1e-9)
            .collect();
        prop_assert_eq!(below.len(), slow.min(count), "outliers: {:?}", below);
        for i in 0..count {
            prop_assert!(fleet.speed(i) > 0.5 && fleet.speed(i) <= 1.0);
        }
    }
}
