//! Network configuration structures and the Summit/Frontier presets.

/// A point-to-point link class: latency plus one-directional bandwidth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// One-way latency in seconds.
    pub latency: f64,
    /// Bandwidth in bytes/second (one direction).
    pub bandwidth: f64,
}

/// The node's network interface pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NicSpec {
    /// Number of NICs on the node.
    pub count: u32,
    /// Per-NIC bandwidth in bytes/second, one direction.
    pub bw_per_nic: f64,
    /// Injection latency through the NIC in seconds.
    pub latency: f64,
}

/// Complete interconnect model for one system.
///
/// Mutating the boolean switches reproduces the paper's §V-E ablations
/// (port binding, GPU-aware MPI); mutating the specs supports sensitivity
/// studies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Intra-node GPU-to-GPU link (NVLink / Infinity Fabric).
    pub intra_node: LinkSpec,
    /// The node's NIC pool (EDR IB / Slingshot-11).
    pub nics: NicSpec,
    /// Host-memory staging path used when `gpu_aware` is off (PCIe-class).
    pub host_staging: LinkSpec,
    /// Whether MPI sends directly from GPU memory (§V-E "GPU-aware MPI").
    pub gpu_aware: bool,
    /// Whether ranks are bound to distinct NIC ports (§V-E "Port Binding").
    pub port_binding: bool,
    /// Fabric congestion growth: fractional effective-bandwidth loss per
    /// log2(node count) as collectives span more switches. Lower on
    /// Summit's full-bisection fat tree than on Frontier's dragonfly.
    pub congestion_per_log_node: f64,
    /// Device-memory copy bandwidth for rank-to-self transfers.
    pub local_copy_bw: f64,
    /// Device-memory copy latency for rank-to-self transfers.
    pub local_copy_latency: f64,
}

/// Summit interconnect per Table I: NVLink 50+50 GB/s intra-node, two
/// Mellanox EDR NICs at 12.5 GB/s each. Defaults reflect the *tuned*
/// configuration (port binding on); the benchmark of Fig. 8 flips the
/// switches. Summit's NICs hang off the CPUs, so the default is
/// non-GPU-aware staging through host memory.
pub fn summit_network() -> NetworkConfig {
    NetworkConfig {
        intra_node: LinkSpec {
            latency: 2.0e-6,
            bandwidth: 50.0e9,
        },
        nics: NicSpec {
            count: 2,
            bw_per_nic: 12.5e9,
            latency: 3.0e-6,
        },
        host_staging: LinkSpec {
            latency: 4.0e-6,
            bandwidth: 60.0e9, // NVLink host link (CPU<->GPU on POWER9)
        },
        gpu_aware: false,
        port_binding: true,
        congestion_per_log_node: 0.045,
        local_copy_bw: 700.0e9,
        local_copy_latency: 1.0e-7,
    }
}

/// Frontier interconnect per Table I: Infinity Fabric 50+50 GB/s intra-node,
/// four Slingshot-11 NICs at 25 GB/s each, attached directly to the GPUs
/// (hence GPU-aware by default).
pub fn frontier_network() -> NetworkConfig {
    NetworkConfig {
        intra_node: LinkSpec {
            latency: 1.5e-6,
            bandwidth: 50.0e9,
        },
        nics: NicSpec {
            count: 4,
            bw_per_nic: 25.0e9,
            latency: 2.0e-6,
        },
        host_staging: LinkSpec {
            latency: 4.0e-6,
            // The CPU<->GCD Infinity Fabric leg is 36 GB/s, but early
            // Frontier MPICH staged through page-locked host buffers with
            // protocol copies on both ends; the *effective* staging rate
            // observed was far below link speed.
            bandwidth: 12.0e9,
        },
        gpu_aware: true,
        port_binding: true,
        congestion_per_log_node: 0.06,
        local_copy_bw: 1.6e12,
        local_copy_latency: 1.0e-7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let s = summit_network();
        let f = frontier_network();
        // Frontier has 4x node injection bandwidth.
        let s_bw = s.nics.count as f64 * s.nics.bw_per_nic;
        let f_bw = f.nics.count as f64 * f.nics.bw_per_nic;
        assert!((f_bw / s_bw - 4.0).abs() < 1e-9);
        // Same intra-node GPU link bandwidth per Table I.
        assert_eq!(s.intra_node.bandwidth, f.intra_node.bandwidth);
        // NIC attachment: host-side on Summit, GPU-side on Frontier.
        assert!(!s.gpu_aware && f.gpu_aware);
    }
}
