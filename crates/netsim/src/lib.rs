//! # mxp-netsim — interconnect model for Summit and Frontier
//!
//! Replaces the physical NVLink / Infinity-Fabric / EDR-InfiniBand /
//! Slingshot-11 fabrics with a parametric LogGP-style model. The message
//! runtime (`mxp-msgsim`) asks this crate for the point-to-point cost of a
//! message between two GCD locations and charges per-rank simulated clocks;
//! collective behaviour (tree vs ring pipelining) then *emerges* from the
//! schedule rather than being hard-coded.
//!
//! What is modeled, and where it comes from in the paper:
//!
//! * **Link classes** — same-GCD (memcpy), intra-node GPU interconnect
//!   (50+50 GB/s on both systems, Table I), inter-node NIC path
//!   (2 × 12.5 GB/s EDR on Summit, 4 × 25 GB/s Slingshot-11 on Frontier).
//! * **NIC sharing (Eq. 5)** — ranks on the same node competing for the
//!   node's injection bandwidth divide it; the caller passes the number of
//!   concurrent sharers (`Q_r` or `Q_c` during row/column broadcasts).
//! * **Port binding (§V-E)** — without port binding, Summit ranks all route
//!   through a single NIC port; with it they spread across both.
//! * **GPU-aware MPI (§V-E)** — without it every inter-node message stages
//!   through host memory, adding a store-and-forward delay on both sides.
//!
//! All constants are calibrated from Table I and are plain struct fields so
//! experiments can perturb them.

#![deny(missing_docs)]

mod config;
mod location;

pub use config::{frontier_network, summit_network, LinkSpec, NetworkConfig, NicSpec};
pub use location::{GcdLoc, P2pCost};

impl NetworkConfig {
    /// Point-to-point cost of one message from `src` to `dst`.
    ///
    /// `sharers` is the number of ranks on the sending node that are
    /// injecting into the network concurrently in this phase (the
    /// `Q_r`/`Q_c` factor of Eq. 5); it only affects the inter-node path.
    pub fn p2p(&self, src: GcdLoc, dst: GcdLoc, sharers: u32) -> P2pCost {
        let sharers = sharers.max(1) as f64;
        if src == dst {
            // Local "send to self": a device-memory copy.
            return P2pCost {
                latency: self.local_copy_latency,
                sec_per_byte: 1.0 / self.local_copy_bw,
            };
        }
        if src.node == dst.node {
            // Intra-node GPU interconnect hop.
            return P2pCost {
                latency: self.intra_node.latency,
                sec_per_byte: 1.0 / self.intra_node.bandwidth,
            };
        }
        // Inter-node: injection bandwidth is the node NIC pool, shared.
        // A single rank can never exceed one NIC port — the paper notes the
        // matching Frontier limitation ("not allowing a single MPI rank to
        // ... utilize all 4 NIC ports", §V-E).
        let nic_pool = if self.port_binding {
            self.nics.count as f64 * self.nics.bw_per_nic
        } else {
            // Without port binding all traffic collapses onto one port.
            self.nics.bw_per_nic
        };
        let bw = (nic_pool / sharers).min(self.nics.bw_per_nic);
        let mut latency = self.nics.latency;
        let mut sec_per_byte = 1.0 / bw;
        if !self.gpu_aware {
            // Store-and-forward through host memory on both endpoints:
            // two extra copies over the host link plus a software hop.
            latency += 2.0 * self.host_staging.latency;
            sec_per_byte += 2.0 / self.host_staging.bandwidth;
        }
        P2pCost {
            latency,
            sec_per_byte,
        }
    }

    /// Time for a single message of `bytes` bytes (latency + serialized).
    pub fn transfer_time(&self, src: GcdLoc, dst: GcdLoc, bytes: u64, sharers: u32) -> f64 {
        let c = self.p2p(src, dst, sharers);
        c.latency + bytes as f64 * c.sec_per_byte
    }

    /// The node-level injection bandwidth available to one rank when
    /// `sharers` ranks communicate concurrently — the paper's `NBN / Q`
    /// term, capped at one NIC port per rank. Useful for the analytic model
    /// crate.
    pub fn effective_node_bw(&self, sharers: u32) -> f64 {
        let pool = if self.port_binding {
            self.nics.count as f64 * self.nics.bw_per_nic
        } else {
            self.nics.bw_per_nic
        };
        (pool / sharers.max(1) as f64).min(self.nics.bw_per_nic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(node: usize, gcd: usize) -> GcdLoc {
        GcdLoc { node, gcd }
    }

    #[test]
    fn summit_constants_match_table1() {
        let s = summit_network();
        assert_eq!(s.nics.count, 2);
        assert!((s.nics.bw_per_nic - 12.5e9).abs() < 1.0);
        assert!((s.intra_node.bandwidth - 50.0e9).abs() < 1.0);
    }

    #[test]
    fn frontier_constants_match_table1() {
        let f = frontier_network();
        assert_eq!(f.nics.count, 4);
        assert!((f.nics.bw_per_nic - 25.0e9).abs() < 1.0);
        assert!(f.gpu_aware, "Frontier NICs attach to GPUs");
    }

    #[test]
    fn local_copy_is_fastest() {
        let f = frontier_network();
        let same = f.transfer_time(loc(0, 0), loc(0, 0), 1 << 20, 1);
        let intra = f.transfer_time(loc(0, 0), loc(0, 1), 1 << 20, 1);
        let inter = f.transfer_time(loc(0, 0), loc(1, 0), 1 << 20, 1);
        assert!(same < intra, "{same} !< {intra}");
        assert!(intra < inter, "{intra} !< {inter}");
    }

    #[test]
    fn sharing_divides_bandwidth() {
        let f = frontier_network();
        // Between 4 sharers (one port each) and 8 sharers the pool halves.
        let four = f.transfer_time(loc(0, 0), loc(1, 0), 100 << 20, 4);
        let eight = f.transfer_time(loc(0, 0), loc(1, 0), 100 << 20, 8);
        assert!((eight / four - 2.0).abs() < 0.05, "ratio {}", eight / four);
        // One sharer is port-capped: same rate as four sharers.
        let one = f.transfer_time(loc(0, 0), loc(1, 0), 100 << 20, 1);
        assert!((four / one - 1.0).abs() < 0.01, "ratio {}", four / one);
    }

    #[test]
    fn sharers_dont_affect_intra_node() {
        let f = frontier_network();
        let a = f.transfer_time(loc(0, 0), loc(0, 5), 1 << 24, 1);
        let b = f.transfer_time(loc(0, 0), loc(0, 5), 1 << 24, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn port_binding_improves_summit() {
        let mut s = summit_network();
        s.port_binding = false;
        let without = s.transfer_time(loc(0, 0), loc(1, 0), 64 << 20, 3);
        s.port_binding = true;
        let with = s.transfer_time(loc(0, 0), loc(1, 0), 64 << 20, 3);
        // Two NICs vs one doubles raw injection bandwidth; the host
        // staging leg (Summit is not GPU-aware) dilutes the end-to-end
        // ratio below 2x, consistent with the paper's 35.6-59.7% overall
        // gains rather than a clean doubling.
        assert!(without / with > 1.5, "ratio {}", without / with);
    }

    #[test]
    fn gpu_aware_removes_staging() {
        let mut f = frontier_network();
        f.gpu_aware = false;
        let staged = f.transfer_time(loc(0, 0), loc(1, 0), 64 << 20, 1);
        f.gpu_aware = true;
        let direct = f.transfer_time(loc(0, 0), loc(1, 0), 64 << 20, 1);
        assert!(staged > 1.3 * direct, "staged {staged} vs direct {direct}");
    }

    #[test]
    fn effective_node_bw_eq5() {
        let f = frontier_network();
        // One rank is capped at a single Slingshot port.
        assert!((f.effective_node_bw(1) - 25e9).abs() < 1.0);
        // Four sharers split the pool exactly at the port rate.
        assert!((f.effective_node_bw(4) - 25e9).abs() < 1.0);
        // Eight sharers (full Frontier node) halve it.
        assert!((f.effective_node_bw(8) - 12.5e9).abs() < 1.0);
        let mut s = summit_network();
        s.port_binding = false;
        assert!((s.effective_node_bw(1) - 12.5e9).abs() < 1.0);
        assert!((s.effective_node_bw(2) - 6.25e9).abs() < 1.0);
    }

    #[test]
    fn zero_sharers_treated_as_one() {
        let f = frontier_network();
        assert_eq!(
            f.transfer_time(loc(0, 0), loc(1, 0), 1024, 0),
            f.transfer_time(loc(0, 0), loc(1, 0), 1024, 1)
        );
    }

    #[test]
    fn latency_dominates_small_messages() {
        let f = frontier_network();
        let tiny = f.transfer_time(loc(0, 0), loc(1, 0), 8, 1);
        // 8 bytes at 100 GB/s is sub-nanosecond; latency must dominate.
        assert!(tiny > 0.9 * f.nics.latency);
    }
}
