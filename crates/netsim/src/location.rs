//! Physical placement of a GCD and the cost record of a point-to-point hop.

/// Physical location of a GCD (one MPI rank in the paper's mapping) in the
/// machine: which node it lives on and which GCD slot within the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GcdLoc {
    /// Node index in the machine.
    pub node: usize,
    /// GCD slot within the node (0..Q).
    pub gcd: usize,
}

/// LogGP-style cost of a point-to-point message on a particular path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct P2pCost {
    /// One-way latency in seconds (the `L` term).
    pub latency: f64,
    /// Serialization cost per byte in seconds (the `G` term).
    pub sec_per_byte: f64,
}

impl P2pCost {
    /// Total time for a message of `bytes` bytes.
    #[inline]
    pub fn time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 * self.sec_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_time() {
        let c = P2pCost {
            latency: 1e-6,
            sec_per_byte: 1e-9,
        };
        assert!((c.time(1000) - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn loc_equality() {
        assert_eq!(GcdLoc { node: 1, gcd: 2 }, GcdLoc { node: 1, gcd: 2 });
        assert_ne!(GcdLoc { node: 1, gcd: 2 }, GcdLoc { node: 2, gcd: 1 });
    }
}
