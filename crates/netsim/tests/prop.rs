//! Property-based tests of the interconnect model.

use mxp_netsim::{frontier_network, summit_network, GcdLoc, NetworkConfig};
use proptest::prelude::*;

fn nets() -> Vec<NetworkConfig> {
    vec![summit_network(), frontier_network()]
}

proptest! {
    /// Transfer time is monotone non-decreasing in bytes on every path.
    #[test]
    fn monotone_in_bytes(
        b1 in 0u64..(1 << 30),
        b2 in 0u64..(1 << 30),
        src_node in 0usize..4,
        dst_node in 0usize..4,
        gcd in 0usize..6,
        sharers in 0u32..10,
    ) {
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        for net in nets() {
            let s = GcdLoc { node: src_node, gcd };
            let d = GcdLoc { node: dst_node, gcd: (gcd + 1) % 6 };
            prop_assert!(net.transfer_time(s, d, lo, sharers) <= net.transfer_time(s, d, hi, sharers));
        }
    }

    /// More sharers never make a transfer faster.
    #[test]
    fn monotone_in_sharers(bytes in 1u64..(1 << 28), s1 in 1u32..12, s2 in 1u32..12) {
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        for net in nets() {
            let a = GcdLoc { node: 0, gcd: 0 };
            let b = GcdLoc { node: 1, gcd: 0 };
            prop_assert!(net.transfer_time(a, b, bytes, lo) <= net.transfer_time(a, b, bytes, hi));
        }
    }

    /// The path hierarchy holds for any size: local <= intra-node <=
    /// inter-node (strict once the payload is nontrivial).
    #[test]
    fn path_hierarchy(bytes in 1u64..(1 << 28)) {
        for net in nets() {
            let same = net.transfer_time(GcdLoc { node: 0, gcd: 0 }, GcdLoc { node: 0, gcd: 0 }, bytes, 1);
            let intra = net.transfer_time(GcdLoc { node: 0, gcd: 0 }, GcdLoc { node: 0, gcd: 1 }, bytes, 1);
            let inter = net.transfer_time(GcdLoc { node: 0, gcd: 0 }, GcdLoc { node: 1, gcd: 0 }, bytes, 1);
            prop_assert!(same <= intra);
            prop_assert!(intra <= inter);
        }
    }

    /// Disabling GPU-aware transfers or port binding never speeds anything
    /// up (ablation switches point the right way for all sizes).
    #[test]
    fn ablations_never_help(bytes in 0u64..(1 << 28), sharers in 1u32..9) {
        for base in nets() {
            let a = GcdLoc { node: 0, gcd: 0 };
            let b = GcdLoc { node: 1, gcd: 0 };
            let t0 = base.transfer_time(a, b, bytes, sharers);
            let mut staged = base;
            staged.gpu_aware = false;
            prop_assert!(staged.transfer_time(a, b, bytes, sharers) >= t0);
            let mut unbound = base;
            unbound.port_binding = false;
            prop_assert!(unbound.transfer_time(a, b, bytes, sharers) >= t0);
        }
    }

    /// Effective node bandwidth is capped by one port and by the pool.
    #[test]
    fn effective_bw_bounds(sharers in 1u32..32) {
        for net in nets() {
            let bw = net.effective_node_bw(sharers);
            prop_assert!(bw <= net.nics.bw_per_nic + 1.0);
            let pool = net.nics.count as f64 * net.nics.bw_per_nic;
            prop_assert!(bw * sharers as f64 <= pool * 1.0001 + 1.0 || bw == net.nics.bw_per_nic);
        }
    }
}
